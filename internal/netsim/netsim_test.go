package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func TestDeliver(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	msg := []byte("hello")
	if _, err := a.WriteTo(msg, Addr("b")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	got, from, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:got], msg) {
		t.Fatalf("payload = %q", buf[:got])
	}
	if from.String() != "a" {
		t.Fatalf("from = %v", from)
	}
}

func TestNoRoute(t *testing.T) {
	n := New()
	a := n.Attach("a")
	if _, err := a.WriteTo([]byte("x"), Addr("nowhere")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestMTU(t *testing.T) {
	n := New(WithMTU(8))
	a := n.Attach("a")
	n.Attach("b")
	if _, err := a.WriteTo(make([]byte, 9), Addr("b")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := a.WriteTo(make([]byte, 8), Addr("b")); err != nil {
		t.Fatalf("at-MTU send failed: %v", err)
	}
}

func TestTruncationLikeUDP(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	if _, err := a.WriteTo([]byte("0123456789"), Addr("b")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 4)
	got, _, err := b.ReadFrom(small)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 || string(small) != "0123" {
		t.Fatalf("got %d %q", got, small)
	}
}

func TestDropFirst(t *testing.T) {
	n := New(WithFaults(DropFirst(1)))
	a := n.Attach("a")
	b := n.Attach("b")
	if _, err := a.WriteTo([]byte("first"), Addr("b")); err != nil {
		t.Fatal(err) // drop is silent for the sender
	}
	if _, err := a.WriteTo([]byte("second"), Addr("b")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	got, _, err := b.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:got]) != "second" {
		t.Fatalf("delivered %q, want the second packet", buf[:got])
	}
}

func TestDropSeq(t *testing.T) {
	n := New(WithFaults(DropSeq(1)))
	a := n.Attach("a")
	b := n.Attach("b")
	for _, m := range []string{"p0", "p1", "p2"} {
		if _, err := a.WriteTo([]byte(m), Addr("b")); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 8)
	var delivered []string
	for i := 0; i < 2; i++ {
		got, _, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, string(buf[:got]))
	}
	if delivered[0] != "p0" || delivered[1] != "p2" {
		t.Fatalf("delivered %v", delivered)
	}
}

func TestDuplicate(t *testing.T) {
	n := New(WithFaults(DuplicateAll()))
	a := n.Attach("a")
	b := n.Attach("b")
	if _, err := a.WriteTo([]byte("x"), Addr("b")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 2; i++ {
		if _, _, err := b.ReadFrom(buf); err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
	}
}

func TestReadDeadline(t *testing.T) {
	n := New()
	b := n.Attach("b")
	if err := b.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	_, _, err := b.ReadFrom(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestDeadlineThenDelivery(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	// Expired deadline first…
	if err := b.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, _, err := b.ReadFrom(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	// …then clearing it allows delivery.
	if err := b.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo([]byte("late"), Addr("b")); err != nil {
		t.Fatal(err)
	}
	got, _, err := b.ReadFrom(buf)
	if err != nil || string(buf[:got]) != "late" {
		t.Fatalf("got %q err %v", buf[:got], err)
	}
}

func TestDelay(t *testing.T) {
	n := New(WithDelay(30 * time.Millisecond))
	a := n.Attach("a")
	b := n.Attach("b")
	start := time.Now()
	if _, err := a.WriteTo([]byte("x"), Addr("b")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestClose(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	buf := make([]byte, 8)
	if _, _, err := b.ReadFrom(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v, want ErrClosed", err)
	}
	if _, err := a.WriteTo([]byte("x"), Addr("b")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("write err = %v, want ErrNoRoute (endpoint detached)", err)
	}
	if _, err := b.WriteTo([]byte("x"), Addr("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write from closed err = %v, want ErrClosed", err)
	}
}

func TestPacketsCounter(t *testing.T) {
	n := New()
	a := n.Attach("a")
	n.Attach("b")
	for i := 0; i < 3; i++ {
		if _, err := a.WriteTo([]byte("x"), Addr("b")); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Packets(); got != 3 {
		t.Fatalf("Packets() = %d, want 3", got)
	}
}

func TestAddr(t *testing.T) {
	a := Addr("ep1")
	if a.Network() != "sim" || a.String() != "ep1" {
		t.Fatalf("addr methods: %q %q", a.Network(), a.String())
	}
}

func TestConcurrentReadersEachGetOneDatagram(t *testing.T) {
	// Several goroutines blocked in ReadFrom on one endpoint must each be
	// woken and receive exactly one datagram: the broadcast wakeup must
	// not lose readers the way a single pulse would.
	n := New()
	rx := n.Attach("rx")
	tx := n.Attach("tx")

	const readers = 8
	got := make(chan byte, readers)
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			nr, _, err := rx.ReadFrom(buf)
			if err != nil {
				errs <- err
				return
			}
			if nr != 1 {
				errs <- fmt.Errorf("read %d bytes, want 1", nr)
				return
			}
			got <- buf[0]
		}()
	}
	// Give readers a moment to block, then send one datagram per reader.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < readers; i++ {
		if _, err := tx.WriteTo([]byte{byte(i)}, Addr("rx")); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[byte]bool)
	for i := 0; i < readers; i++ {
		seen[<-got] = true
	}
	if len(seen) != readers {
		t.Fatalf("readers saw %d distinct datagrams, want %d", len(seen), readers)
	}
}
