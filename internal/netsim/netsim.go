// Package netsim provides an in-process datagram network with
// deterministic fault injection. It stands in for the paper's physical
// links (100 Mb/s ATM and Fast-Ethernet): integration tests run the full
// RPC stack over it without sockets, and the fault hooks let tests force
// the loss, duplication, and delay cases that exercise client retransmit
// and reply-cache behaviour.
//
// Endpoints implement net.PacketConn, so the same client and server code
// runs over netsim and over real UDP sockets.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Verdict is a fault hook's decision about one packet.
type Verdict int

// Possible verdicts.
const (
	// Deliver passes the packet through unchanged.
	Deliver Verdict = iota + 1
	// Drop silently discards the packet.
	Drop
	// Duplicate delivers the packet twice.
	Duplicate
)

// FaultFn inspects one packet in flight and decides its fate. seq is the
// global 0-based sequence number of packets sent through the network,
// giving tests a deterministic handle ("drop the first request").
type FaultFn func(from, to net.Addr, seq int, payload []byte) Verdict

// Addr is a network-simulator endpoint address.
type Addr string

// Network returns the network name ("sim").
func (a Addr) Network() string { return "sim" }

// String returns the endpoint name.
func (a Addr) String() string { return string(a) }

// Network is a collection of named endpoints exchanging datagrams with
// configurable faults and propagation delay.
type Network struct {
	mu        sync.Mutex
	endpoints map[Addr]*Endpoint
	fault     FaultFn
	delay     time.Duration
	seq       int
	mtu       int

	// Probabilistic link-fault state (faults.go): one seeded source,
	// per-directed-link profiles, directional partitions, counters.
	rng    *rand.Rand
	links  map[linkKey]*LinkFaults
	parts  map[linkKey]bool
	fstats FaultStats
}

// Option configures a Network.
type Option func(*Network)

// WithFaults installs the packet fault hook.
func WithFaults(f FaultFn) Option { return func(n *Network) { n.fault = f } }

// WithDelay sets a fixed one-way propagation delay for every packet.
func WithDelay(d time.Duration) Option { return func(n *Network) { n.delay = d } }

// WithMTU caps datagram size; larger sends fail like an oversized UDP
// datagram would. Zero means unlimited.
func WithMTU(mtu int) Option { return func(n *Network) { n.mtu = mtu } }

// New creates an empty network.
func New(opts ...Option) *Network {
	n := &Network{endpoints: make(map[Addr]*Endpoint)}
	for _, o := range opts {
		o(n)
	}
	return n
}

// ErrNoRoute reports a send to an address with no endpoint.
var ErrNoRoute = errors.New("netsim: no such endpoint")

// ErrTooLarge reports a datagram above the network MTU.
var ErrTooLarge = errors.New("netsim: datagram exceeds MTU")

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("netsim: endpoint closed")

// Endpoint is one attachment point; it implements net.PacketConn.
type Endpoint struct {
	net  *Network
	addr Addr

	mu       sync.Mutex
	queue    []packet
	notify   chan struct{} // closed and replaced to broadcast state changes
	waiters  int           // readers blocked on notify
	closed   bool
	deadline time.Time
}

type packet struct {
	from    Addr
	payload []byte
}

var _ net.PacketConn = (*Endpoint)(nil)

// Attach creates (or replaces) the endpoint named addr.
func (n *Network) Attach(addr Addr) *Endpoint {
	ep := &Endpoint{net: n, addr: addr, notify: make(chan struct{})}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.endpoints[addr] = ep
	return ep
}

// Packets reports how many datagrams have entered the network so far.
func (n *Network) Packets() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// LocalAddr returns the endpoint's address.
func (e *Endpoint) LocalAddr() net.Addr { return e.addr }

// WriteTo sends one datagram to addr, applying MTU, fault, and delay
// policies.
func (e *Endpoint) WriteTo(p []byte, addr net.Addr) (int, error) {
	to, ok := addr.(Addr)
	if !ok {
		to = Addr(addr.String())
	}
	n := e.net
	n.mu.Lock()
	if e.isClosed() {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	if n.mtu > 0 && len(p) > n.mtu {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(p), n.mtu)
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNoRoute, to)
	}
	seq := n.seq
	n.seq++
	verdict := Deliver
	if n.fault != nil {
		verdict = n.fault(e.addr, to, seq, p)
	}
	lv := n.applyLinkLocked(e.addr, to, len(p))
	delay := n.delay + lv.delay
	n.mu.Unlock()

	if verdict == Drop || lv.drop {
		return len(p), nil // dropped in flight: sender still succeeds
	}
	copies := 1
	if verdict == Duplicate || lv.dup {
		copies = 2
	}
	payload := append([]byte(nil), p...)
	if lv.corrupt >= 0 && lv.corrupt < len(payload) {
		payload[lv.corrupt] ^= 0xFF
	}
	deliver := func() {
		for i := 0; i < copies; i++ {
			dst.enqueue(packet{from: e.addr, payload: payload})
		}
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return len(p), nil
}

func (e *Endpoint) enqueue(p packet) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, p)
	e.broadcastLocked()
	e.mu.Unlock()
}

// broadcastLocked wakes every blocked reader by closing the current
// notify channel and installing a fresh one. Closing reaches all waiters
// at once, unlike a single pulse, so any number of goroutines may block
// in ReadFrom on the same endpoint. With no waiters there is no one to
// wake, so the channel is kept — rotating it would cost an allocation on
// every delivered packet.
func (e *Endpoint) broadcastLocked() {
	if e.waiters == 0 {
		return
	}
	close(e.notify)
	e.notify = make(chan struct{})
}

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// ReadFrom blocks for the next datagram, honouring the read deadline.
// Oversized datagrams are truncated to len(p), as with UDP sockets. Any
// number of goroutines may read concurrently; each datagram is delivered
// to exactly one of them.
func (e *Endpoint) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return 0, nil, ErrClosed
		}
		if len(e.queue) > 0 {
			pkt := e.queue[0]
			e.queue = e.queue[1:]
			e.mu.Unlock()
			n := copy(p, pkt.payload)
			return n, pkt.from, nil
		}
		wait := e.notify
		deadline := e.deadline
		e.waiters++
		e.mu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				e.doneWaiting()
				return 0, nil, os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(remain)
			timeout = timer.C
		}
		select {
		case <-wait:
			if timer != nil {
				timer.Stop()
			}
		case <-timeout:
			e.doneWaiting()
			return 0, nil, os.ErrDeadlineExceeded
		}
		e.doneWaiting()
	}
}

func (e *Endpoint) doneWaiting() {
	e.mu.Lock()
	e.waiters--
	e.mu.Unlock()
}

// Close detaches the endpoint; pending and future reads fail.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.broadcastLocked()
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	return nil
}

// SetDeadline sets the read deadline (writes never block).
func (e *Endpoint) SetDeadline(t time.Time) error { return e.SetReadDeadline(t) }

// SetReadDeadline sets the read deadline.
func (e *Endpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deadline = t
	// Wake blocked readers so they re-evaluate the deadline.
	e.broadcastLocked()
	return nil
}

// SetWriteDeadline is a no-op; simulated writes never block.
func (e *Endpoint) SetWriteDeadline(time.Time) error { return nil }

// DropFirst returns a fault that drops the first k packets and delivers
// the rest — the canonical retransmission test.
func DropFirst(k int) FaultFn {
	return func(_, _ net.Addr, seq int, _ []byte) Verdict {
		if seq < k {
			return Drop
		}
		return Deliver
	}
}

// DropSeq returns a fault that drops exactly the listed global sequence
// numbers.
func DropSeq(seqs ...int) FaultFn {
	set := make(map[int]bool, len(seqs))
	for _, s := range seqs {
		set[s] = true
	}
	return func(_, _ net.Addr, seq int, _ []byte) Verdict {
		if set[seq] {
			return Drop
		}
		return Deliver
	}
}

// DuplicateAll returns a fault that duplicates every packet, forcing the
// server's duplicate-request handling.
func DuplicateAll() FaultFn {
	return func(_, _ net.Addr, _ int, _ []byte) Verdict { return Duplicate }
}
