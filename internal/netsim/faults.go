package netsim

// Seeded probabilistic link faults: the chaos-testing layer over the
// deterministic per-sequence hooks (FaultFn). Faults attach to directed
// links — (from, to) pairs, with "" as a wildcard on either side — and
// draw from one seeded source under the network lock, so a given seed
// replays the identical fault schedule run after run. The chaos
// integration suite and `sunbench -chaos` drive their loss/duplication/
// corruption/reorder schedules through this layer.

import (
	"math/rand"
	"time"
)

// LinkFaults is the fault profile of one directed link. Rates are
// probabilities in [0, 1], drawn independently per packet.
type LinkFaults struct {
	// Loss drops the packet.
	Loss float64
	// Dup delivers the packet twice.
	Dup float64
	// Corrupt XOR-flips one random byte of the payload — undetectable by
	// ONC RPC itself (no checksum below the transport), so corrupted
	// datagrams surface as ill-formed or misrouted replies.
	Corrupt float64
	// Reorder holds the packet long enough for packets sent after it to
	// overtake it (implemented as an extra delivery delay, so no packet
	// is ever stranded).
	Reorder float64
	// JitterMax adds a uniformly random delivery delay in [0, JitterMax]
	// to every packet.
	JitterMax time.Duration
}

// zero reports a profile with nothing to inject.
func (f *LinkFaults) zero() bool {
	return f.Loss == 0 && f.Dup == 0 && f.Corrupt == 0 && f.Reorder == 0 && f.JitterMax == 0
}

// FaultStats counts injected faults network-wide.
type FaultStats struct {
	Dropped     uint64
	Duplicated  uint64
	Corrupted   uint64
	Reordered   uint64
	Partitioned uint64
}

// linkKey names a directed link; "" is a wildcard endpoint.
type linkKey struct {
	from, to Addr
}

// WithSeed seeds the probabilistic fault source. Without it, link
// faults draw from a fixed default seed — deterministic either way.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// SetLink installs (or replaces) the fault profile of the directed link
// from→to. Either side may be the empty Addr as a wildcard; a packet
// uses the most specific profile — (from, to), (from, *), (*, to),
// (*, *) — and only that one.
func (n *Network) SetLink(from, to Addr, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.links == nil {
		n.links = make(map[linkKey]*LinkFaults)
	}
	ff := f
	n.links[linkKey{from, to}] = &ff
}

// ClearLink removes the profile installed for exactly (from, to).
func (n *Network) ClearLink(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{from, to})
}

// Partition cuts the directed link from→to: every packet sent across it
// is dropped (and counted) until Heal. Wildcards work as in SetLink, so
// Partition("", "server") isolates the server's receive side entirely.
func (n *Network) Partition(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.parts == nil {
		n.parts = make(map[linkKey]bool)
	}
	n.parts[linkKey{from, to}] = true
}

// Heal restores the directed link cut by Partition(from, to).
func (n *Network) Heal(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, linkKey{from, to})
}

// FaultStats returns a snapshot of the injected-fault counters.
func (n *Network) FaultStats() FaultStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fstats
}

// partitionedLocked reports whether from→to is currently cut.
func (n *Network) partitionedLocked(from, to Addr) bool {
	if len(n.parts) == 0 {
		return false
	}
	return n.parts[linkKey{from, to}] || n.parts[linkKey{from, ""}] ||
		n.parts[linkKey{"", to}] || n.parts[linkKey{"", ""}]
}

// linkLocked resolves the most specific fault profile for from→to.
func (n *Network) linkLocked(from, to Addr) *LinkFaults {
	if len(n.links) == 0 {
		return nil
	}
	for _, k := range [4]linkKey{{from, to}, {from, ""}, {"", to}, {"", ""}} {
		if f := n.links[k]; f != nil {
			return f
		}
	}
	return nil
}

// rngLocked returns the seeded fault source, creating the default-seed
// one on first use.
func (n *Network) rngLocked() *rand.Rand {
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(1))
	}
	return n.rng
}

// linkVerdict is the outcome of one packet's draw against its link
// profile, applied by WriteTo after the deterministic FaultFn hook.
type linkVerdict struct {
	drop    bool
	dup     bool
	corrupt int // byte index to flip; -1 for none
	delay   time.Duration
}

// applyLinkLocked draws one packet's fate. Must run under n.mu — the
// single rand source is what keeps seeded runs replayable.
func (n *Network) applyLinkLocked(from, to Addr, size int) linkVerdict {
	v := linkVerdict{corrupt: -1}
	if n.partitionedLocked(from, to) {
		n.fstats.Partitioned++
		v.drop = true
		return v
	}
	f := n.linkLocked(from, to)
	if f == nil || f.zero() {
		return v
	}
	rng := n.rngLocked()
	if f.Loss > 0 && rng.Float64() < f.Loss {
		n.fstats.Dropped++
		v.drop = true
		return v
	}
	if f.Dup > 0 && rng.Float64() < f.Dup {
		n.fstats.Duplicated++
		v.dup = true
	}
	if f.Corrupt > 0 && size > 0 && rng.Float64() < f.Corrupt {
		n.fstats.Corrupted++
		v.corrupt = rng.Intn(size)
	}
	if f.JitterMax > 0 {
		v.delay = time.Duration(rng.Int63n(int64(f.JitterMax) + 1))
	}
	if f.Reorder > 0 && rng.Float64() < f.Reorder {
		// Reordering is an extra hold: packets sent afterwards overtake
		// this one naturally, and nothing is ever left stranded in a
		// held-packet queue.
		n.fstats.Reordered++
		bump := 2 * f.JitterMax
		if bump < time.Millisecond {
			bump = time.Millisecond
		}
		v.delay += bump
	}
	return v
}
