package minic

import (
	"fmt"
)

// Check resolves names and types across the program: variable references
// are bound, struct field accesses are resolved to their defining struct,
// function names used as values become FuncRefs, sizeof folds to a
// constant, and every expression is annotated with its type. It returns
// the first error found.
func Check(p *Program) error {
	c := &checker{prog: p}
	for name, s := range p.Structs {
		if len(s.Fields) == 0 {
			return fmt.Errorf("minic: struct %s referenced but never defined", name)
		}
	}
	for _, f := range p.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog   *Program
	fn     *FuncDef
	scopes []map[string]Type
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]Type)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t Type, pos Pos) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errAt(pos, "%s redeclared in this scope", name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) checkFunc(f *FuncDef) error {
	c.fn = f
	c.scopes = nil
	c.pushScope()
	for _, p := range f.Params {
		if err := c.declare(p.Name, p.Type, f.Pos); err != nil {
			return err
		}
	}
	err := c.checkStmt(f.Body)
	c.popScope()
	return err
}

func (c *checker) checkStmt(s Stmt) error {
	switch n := s.(type) {
	case nil:
		return nil
	case *ExprStmt:
		e, err := c.checkExpr(n.E)
		if err != nil {
			return err
		}
		n.E = e
		return nil
	case *VarDecl:
		if n.Init != nil {
			e, err := c.checkExpr(n.Init)
			if err != nil {
				return err
			}
			n.Init = e
			if !assignable(n.Type, e) {
				return errAt(n.Pos, "cannot initialize %s (%s) with %s",
					n.Name, n.Type, typeName(TypeOf(e)))
			}
		}
		return c.declare(n.Name, n.Type, n.Pos)
	case *If:
		e, err := c.checkExpr(n.Cond)
		if err != nil {
			return err
		}
		n.Cond = e
		if err := c.checkStmt(n.Then); err != nil {
			return err
		}
		return c.checkStmt(n.Else)
	case *While:
		e, err := c.checkExpr(n.Cond)
		if err != nil {
			return err
		}
		n.Cond = e
		return c.checkStmt(n.Body)
	case *For:
		c.pushScope()
		defer c.popScope()
		if err := c.checkStmt(n.Init); err != nil {
			return err
		}
		if n.Cond != nil {
			e, err := c.checkExpr(n.Cond)
			if err != nil {
				return err
			}
			n.Cond = e
		}
		if err := c.checkStmt(n.Post); err != nil {
			return err
		}
		return c.checkStmt(n.Body)
	case *Return:
		if n.E == nil {
			if !c.fn.Ret.Equal(TypeVoid) {
				return errAt(n.Pos, "missing return value in %s", c.fn.Name)
			}
			return nil
		}
		e, err := c.checkExpr(n.E)
		if err != nil {
			return err
		}
		n.E = e
		if c.fn.Ret.Equal(TypeVoid) {
			return errAt(n.Pos, "returning a value from void function %s", c.fn.Name)
		}
		if !assignable(c.fn.Ret, e) {
			return errAt(n.Pos, "cannot return %s from %s (returns %s)",
				typeName(TypeOf(e)), c.fn.Name, c.fn.Ret)
		}
		return nil
	case *Break, *Continue:
		return nil
	case *Block:
		c.pushScope()
		defer c.popScope()
		for i, st := range n.Stmts {
			if err := c.checkStmt(st); err != nil {
				return err
			}
			n.Stmts[i] = st
		}
		return nil
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
}

// checkExpr type-checks e, returning a possibly rewritten expression
// (VarRef→FuncRef, SizeOf→IntLit).
func (c *checker) checkExpr(e Expr) (Expr, error) {
	switch n := e.(type) {
	case nil:
		return nil, nil
	case *IntLit:
		setType(n, TypeInt)
		return n, nil
	case *StrLit:
		setType(n, &Ptr{Elem: TypeChar})
		return n, nil
	case *VarRef:
		if t, ok := c.lookup(n.Name); ok {
			setType(n, t)
			return n, nil
		}
		if _, ok := c.prog.Funcs[n.Name]; ok {
			fr := &FuncRef{exprBase: exprBase{Pos: n.Pos}, Name: n.Name}
			setType(fr, TypeFuncPtr)
			return fr, nil
		}
		if _, ok := c.prog.Externs[n.Name]; ok {
			fr := &FuncRef{exprBase: exprBase{Pos: n.Pos}, Name: n.Name}
			setType(fr, TypeFuncPtr)
			return fr, nil
		}
		return nil, errAt(n.Pos, "undefined: %s", n.Name)
	case *SizeOf:
		lit := &IntLit{exprBase: exprBase{Pos: n.Pos}, Val: int64(SizeOfType(n.T))}
		setType(lit, TypeInt)
		return lit, nil
	case *Unary:
		x, err := c.checkExpr(n.X)
		if err != nil {
			return nil, err
		}
		n.X = x
		xt := TypeOf(x)
		switch n.Op {
		case "!", "-", "~":
			if !isScalar(xt) {
				return nil, errAt(n.Pos, "operator %s needs a scalar, got %s", n.Op, typeName(xt))
			}
			setType(n, TypeInt)
		case "*":
			pt, ok := xt.(*Ptr)
			if !ok {
				return nil, errAt(n.Pos, "cannot dereference %s", typeName(xt))
			}
			setType(n, pt.Elem)
		case "&":
			if !isLValue(x) {
				return nil, errAt(n.Pos, "cannot take address of non-lvalue")
			}
			// &array decays to pointer-to-element, the only use in the
			// RPC sources (&arr used as int*).
			if at, ok := xt.(*Array); ok {
				setType(n, &Ptr{Elem: at.Elem})
			} else {
				setType(n, &Ptr{Elem: xt})
			}
		default:
			return nil, errAt(n.Pos, "unknown unary operator %s", n.Op)
		}
		return n, nil
	case *Binary:
		x, err := c.checkExpr(n.X)
		if err != nil {
			return nil, err
		}
		y, err := c.checkExpr(n.Y)
		if err != nil {
			return nil, err
		}
		n.X, n.Y = x, y
		xt, yt := TypeOf(x), TypeOf(y)
		switch n.Op {
		case "+", "-":
			// Pointer arithmetic: ptr ± int keeps the pointer type.
			if pt, ok := decay(xt).(*Ptr); ok && isIntish(yt) {
				setType(n, pt)
				return n, nil
			}
			if pt, ok := decay(yt).(*Ptr); ok && isIntish(xt) && n.Op == "+" {
				setType(n, pt)
				return n, nil
			}
			if isIntish(xt) && isIntish(yt) {
				setType(n, TypeInt)
				return n, nil
			}
			return nil, errAt(n.Pos, "invalid operands to %s: %s, %s", n.Op, typeName(xt), typeName(yt))
		case "==", "!=", "<", ">", "<=", ">=":
			if compatible(xt, yt, x, y) {
				setType(n, TypeInt)
				return n, nil
			}
			return nil, errAt(n.Pos, "cannot compare %s with %s", typeName(xt), typeName(yt))
		case "&&", "||":
			if isScalar(xt) && isScalar(yt) {
				setType(n, TypeInt)
				return n, nil
			}
			return nil, errAt(n.Pos, "invalid operands to %s", n.Op)
		default: // * / % << >> & | ^
			if isIntish(xt) && isIntish(yt) {
				setType(n, TypeInt)
				return n, nil
			}
			return nil, errAt(n.Pos, "invalid operands to %s: %s, %s", n.Op, typeName(xt), typeName(yt))
		}
	case *Assign:
		lhs, err := c.checkExpr(n.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := c.checkExpr(n.RHS)
		if err != nil {
			return nil, err
		}
		n.LHS, n.RHS = lhs, rhs
		if !isLValue(lhs) {
			return nil, errAt(n.Pos, "assignment to non-lvalue")
		}
		lt := TypeOf(lhs)
		if n.Op == "=" {
			if !assignable(lt, rhs) {
				return nil, errAt(n.Pos, "cannot assign %s to %s", typeName(TypeOf(rhs)), typeName(lt))
			}
		} else {
			// Compound ops: int op= int, or ptr += int / ptr -= int.
			rt := TypeOf(rhs)
			_, isPtr := lt.(*Ptr)
			okPtr := isPtr && (n.Op == "+=" || n.Op == "-=") && isIntish(rt)
			okInt := isIntish(lt) && isIntish(rt)
			if !okPtr && !okInt {
				return nil, errAt(n.Pos, "invalid compound assignment %s: %s, %s",
					n.Op, typeName(lt), typeName(rt))
			}
		}
		setType(n, lt)
		return n, nil
	case *Call:
		fun, err := c.checkExpr(n.Fun)
		if err != nil {
			return nil, err
		}
		n.Fun = fun
		for i, a := range n.Args {
			ca, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			n.Args[i] = ca
		}
		switch f := fun.(type) {
		case *FuncRef:
			var ret Type
			var params []Param
			if def, ok := c.prog.Funcs[f.Name]; ok {
				ret, params = def.Ret, def.Params
			} else if ext, ok := c.prog.Externs[f.Name]; ok {
				ret, params = ext.Ret, ext.Params
			} else {
				return nil, errAt(n.Pos, "call of unknown function %s", f.Name)
			}
			if len(n.Args) != len(params) {
				return nil, errAt(n.Pos, "%s expects %d arguments, got %d",
					f.Name, len(params), len(n.Args))
			}
			for i, a := range n.Args {
				if !assignable(params[i].Type, a) {
					return nil, errAt(a.Position(), "argument %d of %s: cannot pass %s as %s",
						i+1, f.Name, typeName(TypeOf(a)), params[i].Type)
				}
			}
			setType(n, ret)
			return n, nil
		default:
			// Indirect call through a funcptr value; signatures are
			// unchecked (as with K&R C) and the result is int.
			if ft := TypeOf(fun); ft == nil || !ft.Equal(TypeFuncPtr) {
				return nil, errAt(n.Pos, "called object is not a function")
			}
			setType(n, TypeInt)
			return n, nil
		}
	case *Field:
		x, err := c.checkExpr(n.X)
		if err != nil {
			return nil, err
		}
		n.X = x
		xt := TypeOf(x)
		var st *Struct
		if n.Arrow {
			pt, ok := xt.(*Ptr)
			if !ok {
				return nil, errAt(n.Pos, "-> on non-pointer %s", typeName(xt))
			}
			st, ok = pt.Elem.(*Struct)
			if !ok {
				return nil, errAt(n.Pos, "-> on pointer to non-struct %s", typeName(xt))
			}
		} else {
			var ok bool
			st, ok = xt.(*Struct)
			if !ok {
				return nil, errAt(n.Pos, ". on non-struct %s", typeName(xt))
			}
		}
		idx := st.FieldIndex(n.Name)
		if idx < 0 {
			return nil, errAt(n.Pos, "struct %s has no field %s", st.Name, n.Name)
		}
		n.Struct = st
		setType(n, st.Fields[idx].Type)
		return n, nil
	case *Index:
		x, err := c.checkExpr(n.X)
		if err != nil {
			return nil, err
		}
		i, err := c.checkExpr(n.I)
		if err != nil {
			return nil, err
		}
		n.X, n.I = x, i
		if !isIntish(TypeOf(i)) {
			return nil, errAt(n.Pos, "array index must be integer")
		}
		switch t := decay(TypeOf(x)).(type) {
		case *Ptr:
			setType(n, t.Elem)
		default:
			return nil, errAt(n.Pos, "cannot index %s", typeName(TypeOf(x)))
		}
		return n, nil
	case *FuncRef:
		setType(n, TypeFuncPtr)
		return n, nil
	default:
		return nil, fmt.Errorf("minic: unknown expression %T", e)
	}
}

// decay converts array types to pointer-to-element, as C does in rvalue
// contexts.
func decay(t Type) Type {
	if at, ok := t.(*Array); ok {
		return &Ptr{Elem: at.Elem}
	}
	return t
}

func isIntish(t Type) bool {
	p, ok := t.(*Prim)
	return ok && (p.Kind == Int || p.Kind == Char)
}

func isScalar(t Type) bool {
	if isIntish(t) {
		return true
	}
	_, ok := t.(*Ptr)
	return ok
}

// compatible reports whether two types may be compared.
func compatible(xt, yt Type, x, y Expr) bool {
	if isIntish(xt) && isIntish(yt) {
		return true
	}
	xp, xok := decay(xt).(*Ptr)
	yp, yok := decay(yt).(*Ptr)
	if xok && yok {
		return xp.Elem.Equal(yp.Elem) || isVoidPtr(xp) || isVoidPtr(yp)
	}
	// Pointer against the null constant.
	if xok && isZeroLit(y) {
		return true
	}
	if yok && isZeroLit(x) {
		return true
	}
	return false
}

func isVoidPtr(p *Ptr) bool { return p.Elem.Equal(TypeVoid) }

func isZeroLit(e Expr) bool {
	l, ok := e.(*IntLit)
	return ok && l.Val == 0
}

// assignable reports whether an expression of e's type may be stored in a
// target of type t.
func assignable(t Type, e Expr) bool {
	et := decay(TypeOf(e))
	t = decay(t)
	if t.Equal(et) {
		return true
	}
	if isIntish(t) && isIntish(et) {
		return true
	}
	if tp, ok := t.(*Ptr); ok {
		if isZeroLit(e) {
			return true // null constant
		}
		if ep, ok := et.(*Ptr); ok {
			return isVoidPtr(tp) || isVoidPtr(ep)
		}
	}
	if t.Equal(TypeFuncPtr) && et != nil && et.Equal(TypeFuncPtr) {
		return true
	}
	return false
}

// isLValue reports whether e designates a storage location.
func isLValue(e Expr) bool {
	switch n := e.(type) {
	case *VarRef, *Field, *Index:
		return true
	case *Unary:
		return n.Op == "*"
	default:
		return false
	}
}

func typeName(t Type) string {
	if t == nil {
		return "<unchecked>"
	}
	return t.String()
}
