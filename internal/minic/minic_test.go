package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int f(int x) { return x + 0x1f; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKeyword, TokIdent, TokPunct, TokKeyword, TokIdent,
		TokPunct, TokPunct, TokKeyword, TokIdent, TokPunct, TokInt, TokPunct, TokPunct, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d (%q) kind = %d, want %d", i, toks[i].Text, toks[i].Kind, k)
		}
	}
	if toks[10].Val != 0x1f {
		t.Fatalf("hex literal = %d", toks[10].Val)
	}
}

func TestLexSuffixesAndComments(t *testing.T) {
	toks, err := Lex("4u 10L /* block\ncomment */ 7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 4 || toks[1].Val != 10 || toks[2].Val != 7 {
		t.Fatalf("vals: %d %d %d", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`"hi\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hi\n" {
		t.Fatalf("string tok = %+v", toks[0])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"/* unterminated", `"unterminated`, "@", `"\q"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

const exampleSrc = `
struct pair {
    int int1;
    int int2;
};

struct xdrbuf {
    int x_op;
    char* x_private;
    int x_handy;
    funcptr x_putlong;
};

extern int htonl(int v);
extern void stlong(char* p, int v);

int xdrmem_putlong(struct xdrbuf* xdrs, int* lp)
{
    if ((xdrs->x_handy -= sizeof(long)) < 0) {
        return 0;
    }
    stlong(xdrs->x_private, htonl(*lp));
    xdrs->x_private += sizeof(long);
    return 1;
}

int xdr_pair(struct xdrbuf* xdrs, struct pair* objp)
{
    if (!xdrmem_putlong(xdrs, &objp->int1)) {
        return 0;
    }
    if (!xdrmem_putlong(xdrs, &objp->int2)) {
        return 0;
    }
    return 1;
}
`

func TestParseAndCheckExample(t *testing.T) {
	p, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	if len(p.Structs) != 2 || len(p.Funcs) != 2 || len(p.Externs) != 2 {
		t.Fatalf("program shape: %s", p)
	}
	f := p.Funcs["xdrmem_putlong"]
	if f == nil || len(f.Params) != 2 {
		t.Fatalf("xdrmem_putlong = %+v", f)
	}
	if !f.Ret.Equal(TypeInt) {
		t.Fatalf("return type %s", f.Ret)
	}
	// sizeof(long) folded to 4 inside the compound assignment.
	txt := PrintProgram(p)
	if strings.Contains(txt, "sizeof") {
		t.Fatalf("sizeof not folded:\n%s", txt)
	}
	if !strings.Contains(txt, "x_handy -= 4") {
		t.Fatalf("missing folded decrement:\n%s", txt)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int sum(int* a, int n)
{
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s += a[i];
        if (s > 100) { break; }
        while (s < 0) { s = s + 1; continue; }
    }
    return s;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
}

func TestParsePostIncrementSugar(t *testing.T) {
	src := `int f(int x) { x++; ++x; x--; return x; }`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	txt := PrintProgram(p)
	if !strings.Contains(txt, "x += 1") || !strings.Contains(txt, "x -= 1") {
		t.Fatalf("increment sugar not rewritten:\n%s", txt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int f( { }",
		"int f() { return }",
		"struct s { int x; };; extra",
		"int f() { undefinedcall(; }",
		"int 3() {}",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"undefined var":       `int f(void) { return y; }`,
		"bad field":           `struct s { int a; }; int f(struct s* p) { return p->b; }`,
		"arrow on non-ptr":    `struct s { int a; }; int f(struct s p) { return p->a; }`,
		"deref int":           `int f(int x) { return *x; }`,
		"assign to rvalue":    `int f(int x) { 3 = x; return x; }`,
		"void return value":   `void f(int x) { return x; }`,
		"missing return expr": `int f(void) { return; }`,
		"wrong arity":         `int g(int a) { return a; } int f(void) { return g(1, 2); }`,
		"call non-function":   `int f(int x) { return x(1); }`,
		"redeclared":          `int f(void) { int x; int x; return 0; }`,
		"undefined struct":    `int f(struct nosuch* p) { return 0; }`,
		"compare ptr int":     `int f(int* p, int x) { return p < x; }`,
	}
	for name, src := range bad {
		p, err := Parse(src)
		if err != nil {
			continue // parse error also acceptable for malformed input
		}
		if err := Check(p); err == nil {
			t.Errorf("%s: Check succeeded, want error", name)
		}
	}
}

func TestCheckFuncRefRewrite(t *testing.T) {
	src := `
struct ops { funcptr put; };
int putit(int x) { return x; }
int call(struct ops* o, int v) { return o->put(v); }
int setup(struct ops* o) { o->put = putit; return 1; }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	// The assignment RHS must have been rewritten to a FuncRef.
	setup := p.Funcs["setup"]
	es := setup.Body.Stmts[0].(*ExprStmt)
	asg := es.E.(*Assign)
	if _, ok := asg.RHS.(*FuncRef); !ok {
		t.Fatalf("RHS is %T, want *FuncRef", asg.RHS)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	src := `
int f(char* p, int* q, int n)
{
    char* a = p + 4;
    int* b = q + n;
    a += 2;
    b -= 1;
    return *b + (a != 0);
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	printed := PrintProgram(p)
	// Re-parse the printed output: pretty-printing must be syntactically
	// stable (idempotent modulo whitespace).
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, printed)
	}
	if err := Check(p2); err != nil {
		t.Fatalf("recheck failed: %v", err)
	}
	printed2 := PrintProgram(p2)
	if printed != printed2 {
		t.Fatalf("printing not idempotent:\n--- first\n%s\n--- second\n%s", printed, printed2)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParse(exampleSrc)
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	// Mutate the clone; the original must be unaffected.
	f := q.Funcs["xdr_pair"]
	f.Body.Stmts = nil
	if len(p.Funcs["xdr_pair"].Body.Stmts) == 0 {
		t.Fatal("Clone shared statement slices")
	}
	q.Structs["pair"].Fields[0].Name = "mutated"
	if p.Structs["pair"].Fields[0].Name != "int1" {
		t.Fatal("Clone shared struct fields")
	}
}

func TestSizeOfType(t *testing.T) {
	s := &Struct{Name: "s", Fields: []FieldDef{
		{Name: "a", Type: TypeInt},
		{Name: "p", Type: &Ptr{Elem: TypeChar}},
		{Name: "arr", Type: &Array{Elem: TypeInt, Len: 3}},
	}}
	if got := SizeOfType(s); got != 4+4+12 {
		t.Fatalf("SizeOfType(struct) = %d, want 20", got)
	}
	if SizeOfType(TypeChar) != 1 || SizeOfType(TypeVoid) != 0 {
		t.Fatal("primitive sizes wrong")
	}
}

func TestAnnotatedPrinting(t *testing.T) {
	p := MustParse(`int f(int x) { return x + 1; }`)
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	pr := Printer{Annotate: func(n any, text string) string {
		if _, ok := n.(*Binary); ok {
			return "«" + text + "»"
		}
		return text
	}}
	out := pr.Program(p)
	if !strings.Contains(out, "«") {
		t.Fatalf("annotation missing:\n%s", out)
	}
}

func TestStructForwardReference(t *testing.T) {
	src := `
struct a { struct b* next; int v; };
struct b { struct a* prev; };
int f(struct a* x) { return x->v; }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
}
