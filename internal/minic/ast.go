package minic

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Types

// Type is a mini-C type.
type Type interface {
	typeNode()
	// String renders the type in C-like syntax.
	String() string
	// Equal reports structural type equality.
	Equal(Type) bool
}

// PrimKind enumerates primitive types.
type PrimKind int

// Primitive kinds. Int covers C's int/long/unsigned (all 32-bit words);
// Char is a byte; FuncPtr is an opaque function value.
const (
	Int PrimKind = iota + 1
	Char
	Void
	FuncPtr
)

// Prim is a primitive type.
type Prim struct{ Kind PrimKind }

func (*Prim) typeNode() {}

// String renders the primitive name.
func (p *Prim) String() string {
	switch p.Kind {
	case Int:
		return "int"
	case Char:
		return "char"
	case Void:
		return "void"
	case FuncPtr:
		return "funcptr"
	default:
		return "?"
	}
}

// Equal reports type equality.
func (p *Prim) Equal(o Type) bool {
	q, ok := o.(*Prim)
	return ok && q.Kind == p.Kind
}

// Canonical primitive instances.
var (
	TypeInt     = &Prim{Kind: Int}
	TypeChar    = &Prim{Kind: Char}
	TypeVoid    = &Prim{Kind: Void}
	TypeFuncPtr = &Prim{Kind: FuncPtr}
)

// Ptr is a pointer type.
type Ptr struct{ Elem Type }

func (*Ptr) typeNode() {}

// String renders "elem*".
func (p *Ptr) String() string { return p.Elem.String() + "*" }

// Equal reports type equality.
func (p *Ptr) Equal(o Type) bool {
	q, ok := o.(*Ptr)
	return ok && p.Elem.Equal(q.Elem)
}

// Struct is a named structure type; Fields are filled in by Check.
type Struct struct {
	Name   string
	Fields []FieldDef
}

func (*Struct) typeNode() {}

// String renders "struct name".
func (s *Struct) String() string { return "struct " + s.Name }

// Equal compares by name (structs are nominal).
func (s *Struct) Equal(o Type) bool {
	q, ok := o.(*Struct)
	return ok && q.Name == s.Name
}

// FieldIndex returns the slot of the named field, or -1.
func (s *Struct) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldDef is one struct member.
type FieldDef struct {
	Name string
	Type Type
}

// Array is a fixed-length array type (used for locals and struct fields).
type Array struct {
	Elem Type
	Len  int
}

func (*Array) typeNode() {}

// String renders "elem[len]".
func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem.String(), a.Len) }

// Equal reports type equality.
func (a *Array) Equal(o Type) bool {
	q, ok := o.(*Array)
	return ok && a.Len == q.Len && a.Elem.Equal(q.Elem)
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a mini-C expression. After Check, every expression carries its
// resolved type (via SetType/TypeOf).
type Expr interface {
	exprNode()
	Position() Pos
}

type exprBase struct {
	Pos Pos
	typ Type
}

func (e *exprBase) exprNode() {}

// Position returns the source position.
func (e *exprBase) Position() Pos { return e.Pos }

// TypeOf returns the checked type of e (nil before Check).
func TypeOf(e Expr) Type {
	switch n := e.(type) {
	case *IntLit:
		return n.typ
	case *StrLit:
		return n.typ
	case *VarRef:
		return n.typ
	case *Unary:
		return n.typ
	case *Binary:
		return n.typ
	case *Assign:
		return n.typ
	case *Call:
		return n.typ
	case *Field:
		return n.typ
	case *Index:
		return n.typ
	case *SizeOf:
		return n.typ
	case *FuncRef:
		return n.typ
	default:
		return nil
	}
}

func setType(e Expr, t Type) {
	switch n := e.(type) {
	case *IntLit:
		n.typ = t
	case *StrLit:
		n.typ = t
	case *VarRef:
		n.typ = t
	case *Unary:
		n.typ = t
	case *Binary:
		n.typ = t
	case *Assign:
		n.typ = t
	case *Call:
		n.typ = t
	case *Field:
		n.typ = t
	case *Index:
		n.typ = t
	case *SizeOf:
		n.typ = t
	case *FuncRef:
		n.typ = t
	}
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// StrLit is a string literal (only valid as an extern-call argument).
type StrLit struct {
	exprBase
	Val string
}

// VarRef names a variable or parameter.
type VarRef struct {
	exprBase
	Name string
}

// FuncRef names a function used as a value (assigned to a funcptr);
// created by Check when a VarRef resolves to a function.
type FuncRef struct {
	exprBase
	Name string
}

// Unary is a prefix operation: one of ! - * & ~.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is an infix operation: arithmetic, comparison, logical, bitwise.
// && and || short-circuit.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is an assignment expression: =, +=, -=, etc. Its value is the
// assigned value, so it composes like C's.
type Assign struct {
	exprBase
	Op  string // "=", "+=", "-=", ...
	LHS Expr
	RHS Expr
}

// Call invokes a function. Fun is a VarRef/FuncRef for direct calls or an
// expression of funcptr type for indirect calls.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Field accesses a struct member: x.name or p->name (Arrow).
type Field struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	// Struct is resolved by Check.
	Struct *Struct
}

// Index is array/pointer subscripting x[i].
type Index struct {
	exprBase
	X Expr
	I Expr
}

// SizeOf is sizeof(type); it folds to a constant during Check.
type SizeOf struct {
	exprBase
	T Type
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a mini-C statement.
type Stmt interface {
	stmtNode()
	Position() Pos
}

type stmtBase struct{ Pos Pos }

func (s *stmtBase) stmtNode() {}

// Position returns the source position.
func (s *stmtBase) Position() Pos { return s.Pos }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	stmtBase
	E Expr
}

// VarDecl declares a local variable with optional initializer.
type VarDecl struct {
	stmtBase
	Name string
	Type Type
	Init Expr // may be nil
}

// If is a conditional with optional else.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a pre-tested loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// For is a C for loop; any of Init/Cond/Post may be nil.
type For struct {
	stmtBase
	Init Stmt // ExprStmt or VarDecl
	Cond Expr
	Post Stmt // ExprStmt
	Body Stmt
}

// Return exits the enclosing function; E may be nil for void.
type Return struct {
	stmtBase
	E Expr
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue advances the innermost loop.
type Continue struct{ stmtBase }

// Block is a brace-delimited statement sequence with its own scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ---------------------------------------------------------------------------
// Declarations and programs

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDef is a function definition.
type FuncDef struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
}

// ExternDecl declares an external function: either a builtin provided by
// the VM (stlong, htonl, memcopy, ...) or an opaque dynamic operation
// (send, recv) that the specializer must always residualize.
type ExternDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []Param
}

// Program is a parsed compilation unit.
type Program struct {
	Structs map[string]*Struct
	Funcs   map[string]*FuncDef
	Externs map[string]*ExternDecl
	// Order preserves declaration order for deterministic printing.
	Order []string
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		Structs: make(map[string]*Struct),
		Funcs:   make(map[string]*FuncDef),
		Externs: make(map[string]*ExternDecl),
	}
}

// Clone deep-copies the program so the specializer can transform it
// without mutating the input.
func (p *Program) Clone() *Program {
	q := NewProgram()
	q.Order = append([]string(nil), p.Order...)
	for name, s := range p.Structs {
		fields := append([]FieldDef(nil), s.Fields...)
		q.Structs[name] = &Struct{Name: s.Name, Fields: fields}
	}
	for name, e := range p.Externs {
		q.Externs[name] = &ExternDecl{Pos: e.Pos, Name: e.Name, Ret: e.Ret,
			Params: append([]Param(nil), e.Params...)}
	}
	for name, f := range p.Funcs {
		q.Funcs[name] = cloneFunc(f)
	}
	return q
}

func cloneFunc(f *FuncDef) *FuncDef {
	return &FuncDef{
		Pos: f.Pos, Name: f.Name, Ret: f.Ret,
		Params: append([]Param(nil), f.Params...),
		Body:   CloneStmt(f.Body).(*Block),
	}
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch n := s.(type) {
	case nil:
		return nil
	case *ExprStmt:
		return &ExprStmt{stmtBase: n.stmtBase, E: CloneExpr(n.E)}
	case *VarDecl:
		return &VarDecl{stmtBase: n.stmtBase, Name: n.Name, Type: n.Type, Init: CloneExpr(n.Init)}
	case *If:
		return &If{stmtBase: n.stmtBase, Cond: CloneExpr(n.Cond),
			Then: CloneStmt(n.Then), Else: CloneStmt(n.Else)}
	case *While:
		return &While{stmtBase: n.stmtBase, Cond: CloneExpr(n.Cond), Body: CloneStmt(n.Body)}
	case *For:
		return &For{stmtBase: n.stmtBase, Init: CloneStmt(n.Init), Cond: CloneExpr(n.Cond),
			Post: CloneStmt(n.Post), Body: CloneStmt(n.Body)}
	case *Return:
		return &Return{stmtBase: n.stmtBase, E: CloneExpr(n.E)}
	case *Break:
		return &Break{stmtBase: n.stmtBase}
	case *Continue:
		return &Continue{stmtBase: n.stmtBase}
	case *Block:
		b := &Block{stmtBase: n.stmtBase, Stmts: make([]Stmt, len(n.Stmts))}
		for i, st := range n.Stmts {
			b.Stmts[i] = CloneStmt(st)
		}
		return b
	default:
		panic(fmt.Sprintf("minic: CloneStmt: unknown node %T", s))
	}
}

// CloneExpr deep-copies an expression tree (nil-safe).
func CloneExpr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *n
		return &c
	case *StrLit:
		c := *n
		return &c
	case *VarRef:
		c := *n
		return &c
	case *FuncRef:
		c := *n
		return &c
	case *Unary:
		return &Unary{exprBase: n.exprBase, Op: n.Op, X: CloneExpr(n.X)}
	case *Binary:
		return &Binary{exprBase: n.exprBase, Op: n.Op, X: CloneExpr(n.X), Y: CloneExpr(n.Y)}
	case *Assign:
		return &Assign{exprBase: n.exprBase, Op: n.Op, LHS: CloneExpr(n.LHS), RHS: CloneExpr(n.RHS)}
	case *Call:
		c := &Call{exprBase: n.exprBase, Fun: CloneExpr(n.Fun), Args: make([]Expr, len(n.Args))}
		for i, a := range n.Args {
			c.Args[i] = CloneExpr(a)
		}
		return c
	case *Field:
		return &Field{exprBase: n.exprBase, X: CloneExpr(n.X), Name: n.Name,
			Arrow: n.Arrow, Struct: n.Struct}
	case *Index:
		return &Index{exprBase: n.exprBase, X: CloneExpr(n.X), I: CloneExpr(n.I)}
	case *SizeOf:
		c := *n
		return &c
	default:
		panic(fmt.Sprintf("minic: CloneExpr: unknown node %T", e))
	}
}

// SizeOfType returns the byte size of t: char=1, int=4, pointers and
// funcptrs are one word (4 for layout purposes, matching the 32-bit
// machines of the paper), structs are the sum of their fields, arrays
// multiply.
func SizeOfType(t Type) int {
	switch n := t.(type) {
	case *Prim:
		switch n.Kind {
		case Char:
			return 1
		case Void:
			return 0
		default:
			return 4
		}
	case *Ptr:
		return 4
	case *Struct:
		total := 0
		for _, f := range n.Fields {
			total += SizeOfType(f.Type)
		}
		return total
	case *Array:
		return n.Len * SizeOfType(n.Elem)
	default:
		return 4
	}
}

// String renders a short program summary.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program{%d structs, %d funcs, %d externs}",
		len(p.Structs), len(p.Funcs), len(p.Externs))
	return sb.String()
}
