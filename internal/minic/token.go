// Package minic implements the subject language of the specializer: a
// small, C-like imperative language rich enough to express the Sun RPC
// marshaling micro-layers the paper specializes (structs, pointers,
// function pointers, byte buffers, loops) and small enough to analyze
// precisely.
//
// Differences from C that matter when reading the transliterated RPC code
// in internal/minic/lib:
//
//   - Buffer stores go through builtins (stlong/ldlong/memcopy/bzero)
//     instead of casted pointer dereferences; `*(long*)p = htonl(v)`
//     becomes `stlong(p, v)`. The builtins model the same cost (one
//     memory transfer) and keep the language cast-free.
//   - Function-pointer fields are declared with the `funcptr` type
//     keyword rather than C's declarator syntax; calling through one
//     (`xdrs->x_ops->x_putlong(...)`) works as in C.
//   - `char*` pointers address byte regions and advance in bytes;
//     `int*` pointers address word regions and advance in 4-byte words,
//     matching C semantics for both.
//
// The compilation pipeline is Lex → Parse → Check (type resolution and
// struct layout) → either interpretation/compilation (internal/vm) or
// binding-time analysis and specialization (internal/tempo).
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokInt
	TokString
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // for TokInt
	Pos  Pos
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "long": true, "unsigned": true,
	"struct": true, "if": true, "else": true, "while": true, "for": true,
	"return": true, "extern": true, "sizeof": true, "funcptr": true,
	"break": true, "continue": true,
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error formats the failure.
func (e *SyntaxError) Error() string { return fmt.Sprintf("minic: %s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
