package minic

import (
	"fmt"
	"sort"
	"strings"
)

// Printer renders AST nodes back to mini-C source. The zero value prints
// plain source; Annotate, when set, wraps the rendering of every
// expression and statement and is how the binding-time visualization
// marks static/dynamic code (Tempo's colored display, paper §6.1).
type Printer struct {
	// Annotate wraps the text of a node; n is the Expr or Stmt.
	Annotate func(n any, text string) string
	sb       strings.Builder
	indent   int
}

// PrintProgram renders a whole program deterministically (structs, then
// externs, then functions, in declaration order).
func PrintProgram(p *Program) string {
	var pr Printer
	return pr.Program(p)
}

// Program renders p.
func (pr *Printer) Program(p *Program) string {
	pr.sb.Reset()
	order := p.Order
	if len(order) == 0 {
		// Fall back to sorted names for synthesized programs.
		for name := range p.Structs {
			order = append(order, "struct "+name)
		}
		for name := range p.Externs {
			order = append(order, "extern "+name)
		}
		for name := range p.Funcs {
			order = append(order, "func "+name)
		}
		sort.Strings(order)
	}
	for _, entry := range order {
		kind, name, _ := strings.Cut(entry, " ")
		switch kind {
		case "struct":
			if s, ok := p.Structs[name]; ok {
				pr.structDef(s)
			}
		case "extern":
			if e, ok := p.Externs[name]; ok {
				pr.externDecl(e)
			}
		case "func":
			if f, ok := p.Funcs[name]; ok {
				pr.Func(f)
			}
		}
	}
	return pr.sb.String()
}

func (pr *Printer) structDef(s *Struct) {
	fmt.Fprintf(&pr.sb, "struct %s {\n", s.Name)
	for _, f := range s.Fields {
		if at, ok := f.Type.(*Array); ok {
			fmt.Fprintf(&pr.sb, "    %s %s[%d];\n", at.Elem, f.Name, at.Len)
		} else {
			fmt.Fprintf(&pr.sb, "    %s %s;\n", f.Type, f.Name)
		}
	}
	pr.sb.WriteString("};\n\n")
}

func (pr *Printer) externDecl(e *ExternDecl) {
	fmt.Fprintf(&pr.sb, "extern %s %s(%s);\n", e.Ret, e.Name, paramList(e.Params))
}

// Func renders one function definition.
func (pr *Printer) Func(f *FuncDef) {
	fmt.Fprintf(&pr.sb, "%s %s(%s)\n", f.Ret, f.Name, paramList(f.Params))
	pr.stmt(f.Body)
	pr.sb.WriteString("\n")
}

func paramList(ps []Param) string {
	if len(ps) == 0 {
		return "void"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%s %s", p.Type, p.Name)
	}
	return strings.Join(parts, ", ")
}

func (pr *Printer) line(format string, args ...any) {
	pr.sb.WriteString(strings.Repeat("    ", pr.indent))
	fmt.Fprintf(&pr.sb, format, args...)
	pr.sb.WriteString("\n")
}

func (pr *Printer) wrap(n any, text string) string {
	if pr.Annotate != nil {
		return pr.Annotate(n, text)
	}
	return text
}

// StmtString renders a single statement (top level, no trailing newline
// guarantees).
func StmtString(s Stmt) string {
	var pr Printer
	pr.stmt(s)
	return strings.TrimRight(pr.sb.String(), "\n")
}

func (pr *Printer) stmt(s Stmt) {
	switch n := s.(type) {
	case nil:
		pr.line(";")
	case *ExprStmt:
		pr.line("%s;", pr.wrap(n, pr.expr(n.E)))
	case *VarDecl:
		var txt string
		if at, ok := n.Type.(*Array); ok {
			txt = fmt.Sprintf("%s %s[%d]", at.Elem, n.Name, at.Len)
		} else {
			txt = fmt.Sprintf("%s %s", n.Type, n.Name)
		}
		if n.Init != nil {
			txt += " = " + pr.expr(n.Init)
		}
		pr.line("%s;", pr.wrap(n, txt))
	case *If:
		pr.line("if (%s) {", pr.wrap(n, pr.expr(n.Cond)))
		pr.indent++
		pr.stmtInBlock(n.Then)
		pr.indent--
		if n.Else != nil {
			pr.line("} else {")
			pr.indent++
			pr.stmtInBlock(n.Else)
			pr.indent--
		}
		pr.line("}")
	case *While:
		pr.line("while (%s) {", pr.wrap(n, pr.expr(n.Cond)))
		pr.indent++
		pr.stmtInBlock(n.Body)
		pr.indent--
		pr.line("}")
	case *For:
		init, cond, post := "", "", ""
		if n.Init != nil {
			init = strings.TrimSuffix(StmtString(n.Init), ";")
		}
		if n.Cond != nil {
			cond = pr.expr(n.Cond)
		}
		if n.Post != nil {
			post = strings.TrimSuffix(StmtString(n.Post), ";")
		}
		pr.line("for (%s; %s; %s) {", init, cond, post)
		pr.indent++
		pr.stmtInBlock(n.Body)
		pr.indent--
		pr.line("}")
	case *Return:
		if n.E == nil {
			pr.line("%s", pr.wrap(n, "return;"))
		} else {
			pr.line("%s", pr.wrap(n, fmt.Sprintf("return %s;", pr.expr(n.E))))
		}
	case *Break:
		pr.line("break;")
	case *Continue:
		pr.line("continue;")
	case *Block:
		pr.line("{")
		pr.indent++
		for _, st := range n.Stmts {
			pr.stmt(st)
		}
		pr.indent--
		pr.line("}")
	default:
		pr.line("/* unknown stmt %T */", s)
	}
}

// stmtInBlock flattens a block body one level to avoid double braces.
func (pr *Printer) stmtInBlock(s Stmt) {
	if b, ok := s.(*Block); ok {
		for _, st := range b.Stmts {
			pr.stmt(st)
		}
		return
	}
	pr.stmt(s)
}

// ExprString renders a single expression.
func ExprString(e Expr) string {
	var pr Printer
	return pr.expr(e)
}

func (pr *Printer) expr(e Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return pr.wrap(n, fmt.Sprintf("%d", n.Val))
	case *StrLit:
		return pr.wrap(n, fmt.Sprintf("%q", n.Val))
	case *VarRef:
		return pr.wrap(n, n.Name)
	case *FuncRef:
		return pr.wrap(n, n.Name)
	case *Unary:
		return pr.wrap(n, n.Op+pr.exprP(n.X))
	case *Binary:
		return pr.wrap(n, fmt.Sprintf("%s %s %s", pr.exprP(n.X), n.Op, pr.exprP(n.Y)))
	case *Assign:
		return pr.wrap(n, fmt.Sprintf("%s %s %s", pr.expr(n.LHS), n.Op, pr.expr(n.RHS)))
	case *Call:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = pr.expr(a)
		}
		return pr.wrap(n, fmt.Sprintf("%s(%s)", pr.exprP(n.Fun), strings.Join(args, ", ")))
	case *Field:
		op := "."
		if n.Arrow {
			op = "->"
		}
		return pr.wrap(n, pr.exprP(n.X)+op+n.Name)
	case *Index:
		return pr.wrap(n, fmt.Sprintf("%s[%s]", pr.exprP(n.X), pr.expr(n.I)))
	case *SizeOf:
		return pr.wrap(n, fmt.Sprintf("sizeof(%s)", n.T))
	default:
		return fmt.Sprintf("/* unknown expr %T */", e)
	}
}

// exprP parenthesizes compound subexpressions for unambiguous output.
func (pr *Printer) exprP(e Expr) string {
	switch e.(type) {
	case *Binary, *Assign, *Unary:
		return "(" + pr.expr(e) + ")"
	default:
		return pr.expr(e)
	}
}
