package rpclib

import (
	"testing"

	"specrpc/internal/vm"
)

func TestProgramParsesAndChecks(t *testing.T) {
	p, err := Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{
		"xdrmem_putlong", "xdrmem_getlong", "xdrmem_putbytes", "xdrmem_getbytes",
		"xdr_long", "xdr_int", "xdr_opaque", "xdr_pair", "xdr_intarray",
		"marshal_callhdr", "marshal_call", "marshal_call_prefix", "marshal_chunk",
		"unmarshal_replyhdr", "unmarshal_reply", "unmarshal_reply_guarded",
		"unmarshal_reply_strict", "clntudp_call", "svc_decodehdr", "svc_replyhdr",
		"svcudp_dispatch",
	} {
		if _, ok := p.Funcs[fn]; !ok {
			t.Errorf("library function %s missing", fn)
		}
	}
}

func TestProgramReturnsIndependentClones(t *testing.T) {
	p1 := MustProgram()
	p2 := MustProgram()
	p1.Funcs["xdr_pair"].Body.Stmts = nil
	if len(p2.Funcs["xdr_pair"].Body.Stmts) == 0 {
		t.Fatal("Program() shares state between calls")
	}
}

func TestHeaderSizesMatchLibraryCode(t *testing.T) {
	// The constants must agree with what the mini-C code produces: run
	// marshal_callhdr and svc_replyhdr on the VM and measure.
	p := MustProgram()
	m, err := vm.New(p)
	if err != nil {
		t.Fatal(err)
	}
	st, buf := armedXDR(t, m, OpEncode, 256)
	rv, err := m.Call("marshal_callhdr", vm.PtrVal(st, 0),
		vm.IntVal(1), vm.IntVal(2), vm.IntVal(3), vm.IntVal(4))
	if err != nil || rv.I != 1 {
		t.Fatalf("marshal_callhdr: %v %v", rv, err)
	}
	layout, _ := m.Layout("xdrbuf")
	used := 256 - int(st.Words[layout.FieldOffset("x_handy")].I)
	if used != HeaderBytes {
		t.Fatalf("call header = %d bytes, constant says %d", used, HeaderBytes)
	}
	_ = buf

	st2, _ := armedXDR(t, m, OpEncode, 256)
	rv, err = m.Call("svc_replyhdr", vm.PtrVal(st2, 0), vm.IntVal(9))
	if err != nil || rv.I != 1 {
		t.Fatalf("svc_replyhdr: %v %v", rv, err)
	}
	used = 256 - int(st2.Words[layout.FieldOffset("x_handy")].I)
	if used != ReplyHeaderBytes {
		t.Fatalf("reply header = %d bytes, constant says %d", used, ReplyHeaderBytes)
	}
}

func armedXDR(t *testing.T, m *vm.Machine, op int, size int) (*vm.Region, *vm.Region) {
	t.Helper()
	xdrs, err := m.NewStruct("xdrbuf", "xdrs")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := m.NewStruct("xdrops", "ops")
	if err != nil {
		t.Fatal(err)
	}
	opsL, _ := m.Layout("xdrops")
	ops.Words[opsL.FieldOffset("x_putlong")] = vm.FuncVal("xdrmem_putlong")
	ops.Words[opsL.FieldOffset("x_getlong")] = vm.FuncVal("xdrmem_getlong")
	ops.Words[opsL.FieldOffset("x_putbytes")] = vm.FuncVal("xdrmem_putbytes")
	ops.Words[opsL.FieldOffset("x_getbytes")] = vm.FuncVal("xdrmem_getbytes")
	buf := vm.NewBytes("buf", size)
	layout, _ := m.Layout("xdrbuf")
	xdrs.Words[layout.FieldOffset("x_op")] = vm.IntVal(int64(op))
	xdrs.Words[layout.FieldOffset("x_ops")] = vm.PtrVal(ops, 0)
	xdrs.Words[layout.FieldOffset("x_private")] = vm.PtrVal(buf, 0)
	xdrs.Words[layout.FieldOffset("x_base")] = vm.PtrVal(buf, 0)
	xdrs.Words[layout.FieldOffset("x_handy")] = vm.IntVal(int64(size))
	return xdrs, buf
}

func TestOpaquePadding(t *testing.T) {
	p := MustProgram()
	m, err := vm.New(p)
	if err != nil {
		t.Fatal(err)
	}
	xdrs, buf := armedXDR(t, m, OpEncode, 64)
	data := vm.BytesRegion("data", []byte{1, 2, 3, 4, 5})
	rv, err := m.Call("xdr_opaque", vm.PtrVal(xdrs, 0), vm.PtrVal(data, 0), vm.IntVal(5))
	if err != nil || rv.I != 1 {
		t.Fatalf("xdr_opaque: %v %v", rv, err)
	}
	layout, _ := m.Layout("xdrbuf")
	used := 64 - int(xdrs.Words[layout.FieldOffset("x_handy")].I)
	if used != 8 { // 5 bytes + 3 pad
		t.Fatalf("opaque(5) used %d bytes, want 8", used)
	}
	want := []byte{1, 2, 3, 4, 5, 0, 0, 0}
	for i, b := range want {
		if buf.Bytes[i] != b {
			t.Fatalf("buffer = %v, want %v", buf.Bytes[:8], want)
		}
	}
}

func TestFullClientCallOnVM(t *testing.T) {
	// Exercise clntudp_call end to end with net externs wired to an
	// in-memory echo server (the generic baseline of Table 2).
	p := MustProgram()
	m, err := vm.New(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	var wire []byte
	m.Extern("net_send", func(_ *vm.Machine, args []vm.Value) vm.Value {
		reg := args[0].P.Region
		ln := int(args[1].I)
		wire = append(wire[:0], reg.Bytes[args[0].P.Off:args[0].P.Off+ln]...)
		return vm.IntVal(int64(ln))
	})
	m.Extern("net_recv", func(_ *vm.Machine, args []vm.Value) vm.Value {
		// Echo server: decode the request with a second VM state and
		// produce a reply into the client's receive buffer.
		srvIn, _ := armedXDR(t, m, OpDecode, len(wire))
		inbuf := srvIn.Words[0] // placeholder; re-arm below
		_ = inbuf
		layout, _ := m.Layout("xdrbuf")
		reqRegion := vm.BytesRegion("req", wire)
		srvIn.Words[layout.FieldOffset("x_private")] = vm.PtrVal(reqRegion, 0)
		srvIn.Words[layout.FieldOffset("x_base")] = vm.PtrVal(reqRegion, 0)
		srvIn.Words[layout.FieldOffset("x_handy")] = vm.IntVal(int64(len(wire)))

		outRegion := args[0].P.Region
		srvOut, _ := armedXDR(t, m, OpEncode, 0)
		srvOut.Words[layout.FieldOffset("x_private")] = vm.PtrVal(outRegion, args[0].P.Off)
		srvOut.Words[layout.FieldOffset("x_base")] = vm.PtrVal(outRegion, args[0].P.Off)
		srvOut.Words[layout.FieldOffset("x_handy")] = vm.IntVal(args[1].I)

		argsArr := vm.NewWords("sargs", n)
		resArr := vm.NewWords("sres", n)
		rv, err := m.Call("svcudp_dispatch",
			vm.PtrVal(srvIn, 0), vm.PtrVal(srvOut, 0),
			vm.IntVal(77), vm.IntVal(1), vm.IntVal(n), vm.IntVal(n),
			vm.PtrVal(argsArr, 0), vm.PtrVal(resArr, 0))
		if err != nil || rv.I != 1 {
			t.Errorf("server dispatch: %v %v", rv, err)
			return vm.IntVal(-1)
		}
		return vm.IntVal(int64(ReplyHeaderBytes + 4 + 4*n))
	})
	m.Extern("run_service", func(_ *vm.Machine, args []vm.Value) vm.Value {
		na := int(args[1].I)
		for i := 0; i < na; i++ {
			args[2].P.Region.Words[args[2].P.Off+i] = args[0].P.Region.Words[args[0].P.Off+i]
		}
		return vm.IntVal(int64(na))
	})

	xout, _ := armedXDR(t, m, OpEncode, 256)
	xin, _ := armedXDR(t, m, OpDecode, 256)
	argArr := vm.NewWords("args", n)
	for i := 0; i < n; i++ {
		argArr.Words[i] = vm.IntVal(int64(10 + i))
	}
	resArr := vm.NewWords("res", n)
	nres := vm.NewWords("nres", 1)
	rv, err := m.Call("clntudp_call",
		vm.PtrVal(xout, 0), vm.PtrVal(xin, 0),
		vm.IntVal(123), vm.IntVal(77), vm.IntVal(1), vm.IntVal(5),
		vm.PtrVal(argArr, 0), vm.IntVal(n), vm.IntVal(n),
		vm.PtrVal(resArr, 0), vm.PtrVal(nres, 0), vm.IntVal(n))
	if err != nil {
		t.Fatal(err)
	}
	if rv.I != 1 {
		t.Fatal("clntudp_call failed")
	}
	for i := 0; i < n; i++ {
		if resArr.Words[i].I != int64(10+i) {
			t.Fatalf("res[%d] = %d", i, resArr.Words[i].I)
		}
	}
	if nres.Words[0].I != n {
		t.Fatalf("nres = %d", nres.Words[0].I)
	}
}
