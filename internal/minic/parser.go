package minic

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
	prog *Program
}

// Parse parses a full compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, prog: NewProgram()}
	for !p.at(TokEOF, "") {
		if err := p.topDecl(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// library sources validated by the build.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = map[TokKind]string{TokIdent: "identifier", TokInt: "integer"}[kind]
	}
	return Token{}, errAt(t.Pos, "expected %q, found %q", want, t.Text)
}

// atType reports whether the current token starts a type.
func (p *Parser) atType() bool {
	if p.cur().Kind != TokKeyword {
		return false
	}
	switch p.cur().Text {
	case "int", "long", "char", "void", "unsigned", "struct", "funcptr":
		return true
	default:
		return false
	}
}

// parseType parses a type: base type plus pointer stars.
func (p *Parser) parseType() (Type, error) {
	t := p.cur()
	var base Type
	switch {
	case p.accept(TokKeyword, "unsigned"):
		// "unsigned int" / "unsigned long" / bare "unsigned".
		p.accept(TokKeyword, "int")
		p.accept(TokKeyword, "long")
		base = TypeInt
	case p.accept(TokKeyword, "int"), p.accept(TokKeyword, "long"):
		// "long" may be followed by "int" ("long int").
		p.accept(TokKeyword, "int")
		base = TypeInt
	case p.accept(TokKeyword, "char"):
		base = TypeChar
	case p.accept(TokKeyword, "void"):
		base = TypeVoid
	case p.accept(TokKeyword, "funcptr"):
		base = TypeFuncPtr
	case p.accept(TokKeyword, "struct"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		s, ok := p.prog.Structs[name.Text]
		if !ok {
			// Forward reference: create the shell now; Check verifies
			// all referenced structs are eventually defined.
			s = &Struct{Name: name.Text}
			p.prog.Structs[name.Text] = s
		}
		base = s
	default:
		return nil, errAt(t.Pos, "expected type, found %q", t.Text)
	}
	for p.accept(TokPunct, "*") {
		base = &Ptr{Elem: base}
	}
	return base, nil
}

func (p *Parser) topDecl() error {
	switch {
	case p.at(TokKeyword, "struct") && p.toks[p.pos+2].Text == "{":
		return p.structDef()
	case p.accept(TokKeyword, "extern"):
		return p.externDecl()
	default:
		return p.funcDef()
	}
}

func (p *Parser) structDef() error {
	if _, err := p.expect(TokKeyword, "struct"); err != nil {
		return err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return err
	}
	s, ok := p.prog.Structs[name.Text]
	if ok && len(s.Fields) > 0 {
		return errAt(name.Pos, "struct %s redefined", name.Text)
	}
	if !ok {
		s = &Struct{Name: name.Text}
		p.prog.Structs[name.Text] = s
	}
	for !p.accept(TokPunct, "}") {
		ft, err := p.parseType()
		if err != nil {
			return err
		}
		for {
			fname, err := p.expect(TokIdent, "")
			if err != nil {
				return err
			}
			fieldType := ft
			if p.accept(TokPunct, "[") {
				n, err := p.expect(TokInt, "")
				if err != nil {
					return err
				}
				if _, err := p.expect(TokPunct, "]"); err != nil {
					return err
				}
				fieldType = &Array{Elem: ft, Len: int(n.Val)}
			}
			s.Fields = append(s.Fields, FieldDef{Name: fname.Text, Type: fieldType})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return err
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	p.prog.Order = append(p.prog.Order, "struct "+name.Text)
	return nil
}

func (p *Parser) paramList() ([]Param, error) {
	var params []Param
	if p.accept(TokPunct, ")") {
		return params, nil
	}
	// "(void)" means no parameters.
	if p.at(TokKeyword, "void") && p.toks[p.pos+1].Text == ")" {
		p.next()
		p.next()
		return params, nil
	}
	for {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		// Array parameters decay to pointers, as in C.
		if p.accept(TokPunct, "[") {
			p.accept(TokInt, "")
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			t = &Ptr{Elem: t}
		}
		params = append(params, Param{Name: name.Text, Type: t})
		if p.accept(TokPunct, ")") {
			return params, nil
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) externDecl() error {
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	params, err := p.paramList()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	p.prog.Externs[name.Text] = &ExternDecl{Pos: name.Pos, Name: name.Text, Ret: ret, Params: params}
	p.prog.Order = append(p.prog.Order, "extern "+name.Text)
	return nil
}

func (p *Parser) funcDef() error {
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	params, err := p.paramList()
	if err != nil {
		return err
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	if _, dup := p.prog.Funcs[name.Text]; dup {
		return errAt(name.Pos, "function %s redefined", name.Text)
	}
	p.prog.Funcs[name.Text] = &FuncDef{Pos: name.Pos, Name: name.Text, Ret: ret, Params: params, Body: body}
	p.prog.Order = append(p.prog.Order, "func "+name.Text)
	return nil
}

func (p *Parser) block() (*Block, error) {
	open, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{Pos: open.Pos}}
	for !p.accept(TokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokPunct, "{"):
		return p.block()
	case p.accept(TokPunct, ";"):
		return nil, nil
	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokKeyword, "else") {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Then: then, Else: els}, nil
	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Body: body}, nil
	case p.accept(TokKeyword, "for"):
		return p.forStmt(t.Pos)
	case p.accept(TokKeyword, "return"):
		var e Expr
		if !p.at(TokPunct, ";") {
			var err error
			e, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Return{stmtBase: stmtBase{Pos: t.Pos}, E: e}, nil
	case p.accept(TokKeyword, "break"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{stmtBase: stmtBase{Pos: t.Pos}}, nil
	case p.accept(TokKeyword, "continue"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{stmtBase: stmtBase{Pos: t.Pos}}, nil
	case p.atType():
		decl, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return decl, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase: stmtBase{Pos: t.Pos}, E: e}, nil
	}
}

func (p *Parser) varDecl() (*VarDecl, error) {
	t := p.cur()
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.accept(TokPunct, "[") {
		n, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		typ = &Array{Elem: typ, Len: int(n.Val)}
	}
	d := &VarDecl{stmtBase: stmtBase{Pos: t.Pos}, Name: name.Text, Type: typ}
	if p.accept(TokPunct, "=") {
		d.Init, err = p.assignExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *Parser) forStmt(pos Pos) (Stmt, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	f := &For{stmtBase: stmtBase{Pos: pos}}
	if !p.at(TokPunct, ";") {
		if p.atType() {
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Init = d
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{stmtBase: stmtBase{Pos: pos}, E: e}
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(TokPunct, ";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(TokPunct, ")") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Post = &ExprStmt{stmtBase: stmtBase{Pos: pos}, E: e}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) expr() (Expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) assignExpr() (Expr, error) {
	lhs, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		rhs, err := p.assignExpr() // right-associative
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *Parser) binaryExpr(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binaryExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct || !contains(binLevels[level], t.Text) {
			return lhs, nil
		}
		// Disambiguate unary & and * (they only appear in unary position,
		// which this loop never is) — nothing to do; precedence handles it.
		p.next()
		rhs, err := p.binaryExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: lhs, Y: rhs}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func (p *Parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "-", "*", "&", "~":
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: x}, nil
		case "++", "--":
			// Pre-increment sugar: ++x ≡ (x += 1).
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			op := "+="
			if t.Text == "--" {
				op = "-="
			}
			one := &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: 1}
			return &Assign{exprBase: exprBase{Pos: t.Pos}, Op: op, LHS: x, RHS: one}, nil
		}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(TokPunct, "("):
			call := &Call{exprBase: exprBase{Pos: t.Pos}, Fun: e}
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(TokPunct, ")") {
						break
					}
					if _, err := p.expect(TokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			e = call
		case p.accept(TokPunct, "["):
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = &Index{exprBase: exprBase{Pos: t.Pos}, X: e, I: i}
		case p.accept(TokPunct, "."):
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &Field{exprBase: exprBase{Pos: t.Pos}, X: e, Name: name.Text}
		case p.accept(TokPunct, "->"):
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &Field{exprBase: exprBase{Pos: t.Pos}, X: e, Name: name.Text, Arrow: true}
		case p.at(TokPunct, "++") || p.at(TokPunct, "--"):
			// Post-increment sugar with pre-increment value semantics;
			// valid only where the value is discarded, which Check could
			// enforce — the RPC sources never use the value.
			p.next()
			op := "+="
			if t.Text == "--" {
				op = "-="
			}
			one := &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: 1}
			e = &Assign{exprBase: exprBase{Pos: t.Pos}, Op: op, LHS: e, RHS: one}
		default:
			return e, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Val}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Text}, nil
	case t.Kind == TokIdent:
		p.next()
		return &VarRef{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case p.accept(TokKeyword, "sizeof"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &SizeOf{exprBase: exprBase{Pos: t.Pos}, T: typ}, nil
	case p.accept(TokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(t.Pos, "unexpected token %q in expression", t.Text)
	}
}
