package minic

import (
	"strings"
)

// Lexer turns source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errAt(start, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.off
		base := int64(10)
		if c == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			start = l.off
			for l.off < len(l.src) && isHexDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		// Integer suffixes (u, U, l, L) are accepted and ignored.
		for l.off < len(l.src) {
			s := l.peekByte()
			if s == 'u' || s == 'U' || s == 'l' || s == 'L' {
				l.advance()
			} else {
				break
			}
		}
		var val int64
		for i := 0; i < len(text); i++ {
			val = val*base + int64(hexVal(text[i]))
		}
		if text == "" {
			return Token{}, errAt(pos, "malformed number")
		}
		return Token{Kind: TokInt, Text: text, Val: val, Pos: pos}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, errAt(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, errAt(pos, "unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				case '0':
					sb.WriteByte(0)
				default:
					return Token{}, errAt(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil

	default:
		for _, p := range puncts {
			if strings.HasPrefix(l.src[l.off:], p) {
				for range p {
					l.advance()
				}
				return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
			}
		}
		return Token{}, errAt(pos, "unexpected character %q", string(c))
	}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
