package compiledtest

// Differential checks for the rpcgen-emitted compiled codecs: across
// random identities, XIDs, and values covering every wire kind the
// emitter handles, the straight-line routines must produce exactly the
// bytes of the fused whole-call codec AND the generic plan walker, and
// their decoder must agree with the plan executor on arbitrary (often
// hostile) body bytes — same accept/reject decision, same value on
// accept. These are the guarantees that let the client and server
// swap a compiled codec in for the interpreter sight unseen.
//
// The file doubles as the CI genstubs differential: the Makefile
// regenerates stubs.go from rich.x into a scratch package, copies this
// test alongside, and runs it there.

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"unsafe"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// fuzzSample derives a kitchen-sink Sample from the fuzzer's raw bytes,
// clamping every variable-size field to its wire bound so the encoders
// are exercised on values the bounds admit. Deterministic, so a crash
// reproduces from its corpus entry.
func fuzzSample(a int32, h int64, flag bool, name string, raw []byte) Sample {
	take := func(n int) []byte {
		if len(raw) < n {
			n = len(raw)
		}
		b := raw[:n]
		raw = raw[n:]
		return b
	}
	ints := func(n int) []int32 {
		b := take(n * 4)
		out := make([]int32, len(b)/4)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
		return out
	}
	if len(name) > 32 {
		name = name[:32]
	}
	v := Sample{
		A: a, B: uint32(a) ^ 0x5a5a5a5a, Flag: flag,
		F: float32(a) / 3, D: float64(h) / 5, H: h, Uh: uint64(h) * 7,
		Kind: Color(a & 3), Name: name,
	}
	copy(v.Tag[:], take(10))
	v.At = Point{X: a ^ 1, Y: a ^ 2}
	v.Corners = [3]Point{{a, int32(h)}, {int32(h >> 32), a}, {^a, -a}}
	copy(v.Window[:], ints(5))
	v.Data = append([]byte(nil), take(64)...)
	v.Nums = Numbers(ints(20))
	v.Payload = Blob(append([]byte(nil), take(100)...))
	for _, p := range ints(7) {
		v.Pts = append(v.Pts, Point{X: p, Y: ^p})
	}
	for i, b := range take(4) {
		s := name
		if len(s) > 16 {
			s = s[:16]
		}
		if len(s) > i*4 {
			s = s[:i*4]
		}
		v.Words = append(v.Words, Word(s))
		v.Bits = append(v.Bits, b&1 == 1)
	}
	return v
}

// FuzzCompiledCodec: the three marshaling engines — generic plan
// walker, fused whole-message codec, compiled straight-line routine —
// must be byte-identical on the wire for calls and replies, and the
// compiled decoder must agree with the plan executor on arbitrary
// bodies.
func FuzzCompiledCodec(f *testing.F) {
	f.Add(uint32(1), uint32(0x20000100), uint32(2), uint32(4),
		int32(rpcmsg.AuthNone), []byte{}, int32(5), int64(-9), true, "hello", []byte{1, 2, 3, 4, 5})
	f.Add(uint32(0xffffffff), uint32(0), uint32(9), uint32(0),
		int32(rpcmsg.AuthSys), []byte{1, 2, 3}, int32(-1), int64(1)<<40, false, "", make([]byte, 300))

	f.Fuzz(func(t *testing.T, xid, prog, vers, proc uint32,
		credFlavor int32, credBody []byte, a int32, h int64, flag bool, name string, raw []byte) {
		cred := rpcmsg.OpaqueAuth{Flavor: rpcmsg.AuthFlavor(credFlavor), Body: credBody}
		ctmpl, err := rpcmsg.NewCallTemplate(prog, vers, cred, rpcmsg.None())
		if err != nil {
			t.Skip() // auth the generic encoder also rejects: no template, no codecs
		}
		rtmpl, err := rpcmsg.NewReplyTemplate(cred)
		if err != nil {
			t.Skip()
		}
		v := fuzzSample(a, h, flag, name, raw)

		// Call side: generic walker vs fused vs compiled.
		ref := xdr.NewBufEncode(nil)
		ref.SetBuffer(ctmpl.AppendCall(nil, xid, proc))
		if err := planSample.Encode(xdr.NewEncoder(ref), &v); err != nil {
			t.Fatalf("reference encode: %v", err)
		}
		cp, err := wire.NewCallPlan(ctmpl, proc, planSample)
		if err != nil {
			t.Fatalf("fuse call: %v", err)
		}
		fb := xdr.NewBufEncode(nil)
		if err := cp.AppendCall(fb, xid, &v); err != nil {
			t.Fatalf("fused encode: %v", err)
		}
		cc := wire.NewCompiledCallCodec(ctmpl, proc, planSample.Codec())
		if cc == nil {
			t.Fatal("no compiled call codec registered for planSample")
		}
		cb := xdr.NewBufEncode(nil)
		if err := cc.Append(cb, xid, unsafe.Pointer(&v)); err != nil {
			t.Fatalf("compiled encode: %v", err)
		}
		if !bytes.Equal(fb.Buffer(), ref.Buffer()) {
			t.Fatalf("fused call differs from walker\n got %x\nwant %x", fb.Buffer(), ref.Buffer())
		}
		if !bytes.Equal(cb.Buffer(), ref.Buffer()) {
			t.Fatalf("compiled call differs from walker\n got %x\nwant %x", cb.Buffer(), ref.Buffer())
		}

		// Reply side: same three engines under the success header.
		rref := xdr.NewBufEncode(nil)
		rref.SetBuffer(rtmpl.AppendReply(nil, xid))
		if err := planSample.Encode(xdr.NewEncoder(rref), &v); err != nil {
			t.Fatalf("reference reply encode: %v", err)
		}
		rc := wire.NewCompiledReplyCodec(rtmpl, planSample.Codec())
		if rc == nil {
			t.Fatal("no compiled reply codec registered for planSample")
		}
		rb := xdr.NewBufEncode(nil)
		if err := rc.Append(rb, xid, unsafe.Pointer(&v)); err != nil {
			t.Fatalf("compiled reply encode: %v", err)
		}
		if !bytes.Equal(rb.Buffer(), rref.Buffer()) {
			t.Fatalf("compiled reply differs from walker\n got %x\nwant %x", rb.Buffer(), rref.Buffer())
		}

		// Compiled reply decode recovers the value the walker encoded.
		var got Sample
		dec := wire.NewCompiledReplyCodec(nil, planSample.Codec())
		if dec == nil {
			t.Fatal("no compiled reply decoder registered for planSample")
		}
		handled, err := dec.DecodeReply(rref.Buffer(), unsafe.Pointer(&got))
		if !handled || err != nil {
			t.Fatalf("compiled DecodeReply handled=%v err=%v", handled, err)
		}
		re := xdr.NewBufEncode(nil)
		if err := planSample.Encode(xdr.NewEncoder(re), &got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re.Buffer(), rref.Buffer()[rtmpl.Len():]) {
			t.Fatalf("compiled-decoded value re-encodes differently")
		}

		// Decode differential on arbitrary body bytes: the plan executor
		// and the compiled decoder must make the same accept/reject
		// decision, and on accept produce the same value — including
		// nil-vs-empty slice identity and buffer-reuse behavior, which is
		// why each decoder runs twice into the same target.
		body := raw
		var pv, cv Sample
		decode := wire.CompiledBodyDecode(planSample.Codec())
		if decode == nil {
			t.Fatal("no compiled body decoder registered for planSample")
		}
		for pass := 0; pass < 2; pass++ {
			perr := planSample.Codec().DecodeBody(body, unsafe.Pointer(&pv))
			cerr := decode(body, unsafe.Pointer(&cv))
			if (perr == nil) != (cerr == nil) {
				t.Fatalf("pass %d: decode disagreement: plan=%v compiled=%v", pass, perr, cerr)
			}
			if perr == nil && !reflect.DeepEqual(pv, cv) {
				t.Fatalf("pass %d: decoded values differ\nplan:     %+v\ncompiled: %+v", pass, pv, cv)
			}
		}
	})
}

// TestCompiledRegistered pins that every plan the generator emitted a
// compiled routine for actually has one in the registry — the silent
// failure mode would be falling back to the interpreter forever.
func TestCompiledRegistered(t *testing.T) {
	for name, c := range map[string]*wire.Codec{
		"planPoint":             planPoint.Codec(),
		"planSample":            planSample.Codec(),
		"planNumbers":           planNumbers.Codec(),
		"planBlob":              planBlob.Codec(),
		"planWord":              planWord.Codec(),
		"planShapeProgV2SumRes": planShapeProgV2SumRes.Codec(),
	} {
		if wire.CompiledBodyDecode(c) == nil {
			t.Errorf("%s: no compiled decoder registered", name)
		}
	}
	tmpl, err := rpcmsg.NewCallTemplate(0x20000100, 2, rpcmsg.None(), rpcmsg.None())
	if err != nil {
		t.Fatal(err)
	}
	if wire.NewCompiledCallCodec(tmpl, 4, planSample.Codec()) == nil {
		t.Error("planSample: no compiled call codec")
	}
	// A plan with no registration must yield nil codecs, never a panic
	// or a typed-nil: that is the fallback the transports rely on.
	other := wire.MustPlan[Point](wire.StructT("point",
		wire.F("x", wire.Int32T()),
		wire.F("y", wire.Int32T()),
	), wire.Specialized)
	if wire.NewCompiledCallCodec(tmpl, 4, other.Codec()) != nil {
		t.Error("unregistered plan produced a compiled call codec")
	}
	if wire.CompiledBodyDecode(other.Codec()) != nil {
		t.Error("unregistered plan produced a compiled decoder")
	}
}

// TestCompiledAllocs pins the hot-path allocation story: once the
// output buffer has grown to size and the target's slices match the
// incoming counts, a compiled append and a compiled decode run
// allocation-free. (A value with non-empty strings must allocate on
// decode — strings are immutable — so the pin uses empty ones, exactly
// the shape the live benchmark measures.)
func TestCompiledAllocs(t *testing.T) {
	tmpl, err := rpcmsg.NewCallTemplate(0x20000100, 2, rpcmsg.None(), rpcmsg.None())
	if err != nil {
		t.Fatal(err)
	}
	cc := wire.NewCompiledCallCodec(tmpl, 4, planSample.Codec())
	decode := wire.CompiledBodyDecode(planSample.Codec())
	if cc == nil || decode == nil {
		t.Fatal("compiled codecs not registered")
	}
	v := fuzzSample(7, -12345, true, "", bytes.Repeat([]byte{0xa5}, 300))
	v.Name = ""
	for i := range v.Words {
		v.Words[i] = ""
	}
	bs := xdr.NewBufEncode(nil)
	if err := cc.Append(bs, 99, unsafe.Pointer(&v)); err != nil {
		t.Fatal(err)
	}
	buf := bs.Buffer()
	if n := testing.AllocsPerRun(100, func() {
		bs.SetBuffer(buf[:0])
		if err := cc.Append(bs, 99, unsafe.Pointer(&v)); err != nil {
			t.Fatal(err)
		}
		buf = bs.Buffer()
	}); n != 0 {
		t.Errorf("compiled append: %v allocs/op, want 0", n)
	}

	body := buf[tmpl.Len():]
	var got Sample
	if err := decode(body, unsafe.Pointer(&got)); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := decode(body, unsafe.Pointer(&got)); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("compiled decode: %v allocs/op, want 0", n)
	}
}
