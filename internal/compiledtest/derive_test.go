package compiledtest

// Derivation differential for the rpcgen-emitted wire descriptions:
// for every generated type the tempo pipeline can specialize, the plan
// derived by binding-time analysis (wire.DeriveCodec — probe stub →
// specializer → residual schedule → lowering) must be
// instruction-identical and byte-identical to the hand-built MustPlan
// codec the stubs actually ship; for every type it cannot, the failure
// must be an explicit *planext.UnsupportedError, never a silently
// different plan.
//
// Like compiled_test.go, this file doubles as the CI genstubs
// differential: the Makefile regenerates stubs.go from rich.x into a
// scratch package, copies this test alongside, and runs it there — so
// the derivation claim is checked against freshly emitted descriptions,
// not just the committed ones.

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"unsafe"

	"specrpc/internal/tempo/planext"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// derivable lists the generated (wire type, hand plan, value factory)
// triples inside the probe subset: word scalars, fixed arrays, counted
// arrays of words, and nested records thereof.
func derivable(rng *rand.Rand) []struct {
	name string
	wt   *wire.Type
	hand *wire.Codec
	rt   reflect.Type
	val  func() unsafe.Pointer
} {
	return []struct {
		name string
		wt   *wire.Type
		hand *wire.Codec
		rt   reflect.Type
		val  func() unsafe.Pointer
	}{
		{"point", wireTypePoint, planPoint.Codec(), reflect.TypeOf(Point{}), func() unsafe.Pointer {
			return unsafe.Pointer(&Point{X: rng.Int31(), Y: -rng.Int31()})
		}},
		{"numbers", wireTypeNumbers, planNumbers.Codec(), reflect.TypeOf(Numbers(nil)), func() unsafe.Pointer {
			v := make(Numbers, rng.Intn(40))
			for i := range v {
				v[i] = rng.Int31()
			}
			return unsafe.Pointer(&v)
		}},
	}
}

// TestDerivedPlanMatchesGenerated: the analysis-derived codec equals the
// shipped hand-built one — same instruction program, same bytes out,
// same accept/reject and value in — for every derivable generated type.
func TestDerivedPlanMatchesGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, mode := range []wire.Mode{wire.Specialized, wire.Chunked} {
		for _, tc := range derivable(rng) {
			derived, err := wire.DeriveCodec(tc.wt, tc.rt, mode)
			if err != nil {
				t.Errorf("%s/%v: derivation failed: %v", tc.name, mode, err)
				continue
			}
			hand, err := wire.Compile(tc.wt, tc.rt, mode)
			if err != nil {
				t.Fatalf("%s/%v: hand compile: %v", tc.name, mode, err)
			}
			if d, h := derived.ProgString(), hand.ProgString(); d != h {
				t.Errorf("%s/%v: derived program differs from hand-built\nderived:\n%s\nhand:\n%s", tc.name, mode, d, h)
				continue
			}
			for pass := 0; pass < 25; pass++ {
				p := tc.val()
				hb := xdr.NewBufEncode(nil)
				if err := tc.hand.Encode(xdr.NewEncoder(hb), p); err != nil {
					t.Fatalf("%s/%v: hand encode: %v", tc.name, mode, err)
				}
				db := xdr.NewBufEncode(nil)
				if err := derived.Encode(xdr.NewEncoder(db), p); err != nil {
					t.Fatalf("%s/%v: derived encode: %v", tc.name, mode, err)
				}
				if !bytes.Equal(db.Buffer(), hb.Buffer()) {
					t.Fatalf("%s/%v: derived bytes differ\n got %x\nwant %x", tc.name, mode, db.Buffer(), hb.Buffer())
				}
				gotH := reflect.New(tc.rt)
				gotD := reflect.New(tc.rt)
				herr := tc.hand.DecodeBody(hb.Buffer(), gotH.UnsafePointer())
				derr := derived.DecodeBody(hb.Buffer(), gotD.UnsafePointer())
				if (herr == nil) != (derr == nil) {
					t.Fatalf("%s/%v: decode disagreement: hand=%v derived=%v", tc.name, mode, herr, derr)
				}
				if herr == nil && !reflect.DeepEqual(gotH.Elem().Interface(), gotD.Elem().Interface()) {
					t.Fatalf("%s/%v: decoded values differ", tc.name, mode)
				}
			}
		}
	}
}

// TestDeriveFallbackExplicit: generated types outside the probe subset
// (strings, opaque bytes, and the kitchen-sink record containing them)
// must fail derivation with the typed unsupported error — the explicit
// signal the caller needs to fall back to the hand compiler.
func TestDeriveFallbackExplicit(t *testing.T) {
	for _, tc := range []struct {
		name string
		wt   *wire.Type
		rt   reflect.Type
	}{
		{"blob", wireTypeBlob, reflect.TypeOf(Blob(nil))},
		{"word", wireTypeWord, reflect.TypeOf(Word(""))},
		{"sample", wireTypeSample, reflect.TypeOf(Sample{})},
	} {
		_, err := wire.DeriveCodec(tc.wt, tc.rt, wire.Specialized)
		if err == nil {
			t.Errorf("%s: derivation unexpectedly succeeded", tc.name)
			continue
		}
		var ue *planext.UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("%s: error %v is not an UnsupportedError", tc.name, err)
		}
	}
}
