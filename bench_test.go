package specrpc

// One benchmark per table and figure of the paper's evaluation (§5).
// The Table benchmarks regenerate the paper's rows through the platform
// cost models (deterministic); the Live benchmarks measure real wall
// clock on this machine, generic vs specialized, including a loopback
// UDP round trip.

import (
	"errors"
	"net"
	"testing"
	"time"

	"specrpc/internal/bench"
	"specrpc/internal/client"
	"specrpc/internal/core"
	"specrpc/internal/netsim"
	"specrpc/internal/platform"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// TestEndToEndSmoke exercises one complete call through the real stack —
// client, rpcmsg, xdr, server — over the simulated network, so the root
// package contributes a test (not only benchmarks) to `go test ./...`.
func TestEndToEndSmoke(t *testing.T) {
	const (
		prog = uint32(0x20000777)
		vers = uint32(1)
		proc = uint32(1)
	)
	s := server.New()
	s.Register(prog, vers, proc, func(dec *xdr.XDR) (server.Marshal, error) {
		var arr []int32
		if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		var sum int32
		for _, v := range arr {
			sum += v
		}
		return func(enc *xdr.XDR) error { return enc.Long(&sum) }, nil
	})
	defer s.Close()

	n := netsim.New()
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()

	c := client.NewUDP(n.Attach("client"), netsim.Addr("server"), client.Config{
		Prog: prog, Vers: vers, Timeout: 5 * time.Second,
	})
	defer c.Close()

	in := []int32{1, 2, 3, 4, 5}
	var sum int32
	err := c.Call(proc,
		func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) },
		func(x *xdr.XDR) error { return x.Long(&sum) })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
}

func BenchmarkTable1ClientMarshaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range platform.Both() {
			rows, err := bench.Table1(m)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				last := rows[len(rows)-1]
				b.ReportMetric(last.Speedup, m.Name+"_speedup@2000")
			}
		}
	}
}

func BenchmarkTable2RoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range platform.Both() {
			rows, err := bench.Table2(m)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				last := rows[len(rows)-1]
				b.ReportMetric(last.Speedup, m.Name+"_speedup@2000")
			}
		}
	}
}

func BenchmarkTable3CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[len(rows)-1].SpecialBytes), "specialized_bytes@2000")
			b.ReportMetric(float64(rows[0].GenericBytes), "generic_bytes")
		}
	}
}

func BenchmarkTable4BoundedUnrolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.SpeedupFull, "full_speedup@2000")
			b.ReportMetric(last.SpeedupChunked, "chunked_speedup@2000")
		}
	}
}

func BenchmarkFigure6Panels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := bench.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 6 {
			b.Fatalf("panels = %d", len(panels))
		}
	}
}

// --- Live wall-clock benchmarks on this machine -----------------------------

func liveEncoder(b *testing.B, mode core.Mode, n int) *core.ClientEncoder {
	b.Helper()
	enc, err := core.NewClientEncoder(mode, core.CallSpec{
		Prog: 0x20000530, Vers: 1, Proc: 1, NArgs: n}, 0)
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

func benchLiveMarshal(b *testing.B, mode core.Mode, n int) {
	enc := liveEncoder(b, mode, n)
	args := make([]int32, n)
	for i := range args {
		args[i] = int32(i)
	}
	buf := make([]byte, enc.Spec.RequestBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(buf, uint32(i), args); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(enc.Spec.RequestBytes()))
}

func BenchmarkLiveMarshalOriginal250(b *testing.B)     { benchLiveMarshal(b, core.Generic, 250) }
func BenchmarkLiveMarshalSpecialized250(b *testing.B)  { benchLiveMarshal(b, core.Specialized, 250) }
func BenchmarkLiveMarshalOriginal2000(b *testing.B)    { benchLiveMarshal(b, core.Generic, 2000) }
func BenchmarkLiveMarshalSpecialized2000(b *testing.B) { benchLiveMarshal(b, core.Specialized, 2000) }
func BenchmarkLiveMarshalChunked2000(b *testing.B) {
	enc, err := core.NewClientEncoder(core.Chunked, core.CallSpec{
		Prog: 0x20000530, Vers: 1, Proc: 1, NArgs: 2000}, 250)
	if err != nil {
		b.Fatal(err)
	}
	args := make([]int32, 2000)
	buf := make([]byte, enc.Spec.RequestBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(buf, uint32(i), args); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLiveRoundTrip(b *testing.B, mode core.Mode, n int) {
	spec := core.CallSpec{Prog: 0x20000530, Vers: 1, Proc: 1, NArgs: n}
	enc, err := core.NewClientEncoder(mode, spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := core.NewServerHandler(mode, spec, func(a, r []int32) int {
		copy(r, a)
		return len(a)
	})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.NewReplyDecoder(mode, spec)
	if err != nil {
		b.Fatal(err)
	}

	// Real loopback UDP between two sockets.
	srvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Skip("no loopback UDP:", err)
	}
	defer srvConn.Close()
	cliConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Skip("no loopback UDP:", err)
	}
	defer cliConn.Close()
	go func() {
		req := make([]byte, 65536)
		rep := make([]byte, 65536)
		for {
			rn, from, err := srvConn.ReadFrom(req)
			if err != nil {
				return
			}
			out, err := srv.Handle(req[:rn], rep)
			if err != nil {
				continue
			}
			if _, err := srvConn.WriteTo(rep[:out], from); err != nil {
				return
			}
		}
	}()

	args := make([]int32, n)
	res := make([]int32, n)
	req := make([]byte, spec.RequestBytes())
	rep := make([]byte, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xid := uint32(i + 1)
		rn, err := enc.Encode(req, xid, args)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cliConn.WriteTo(req[:rn], srvConn.LocalAddr()); err != nil {
			b.Fatal(err)
		}
		gotN, _, err := cliConn.ReadFrom(rep)
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(rep[:gotN], xid, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveRoundTripOriginal250(b *testing.B)    { benchLiveRoundTrip(b, core.Generic, 250) }
func BenchmarkLiveRoundTripSpecialized250(b *testing.B) { benchLiveRoundTrip(b, core.Specialized, 250) }
