// The rmin example is the paper's §2 running service: a client sends two
// integers and the server returns their minimum. It demonstrates the full
// reproduction pipeline on one small call:
//
//  1. The rpcgen-generated Go stubs (examples/rmin/rminrpc) serve the
//     call over a real loopback UDP socket.
//  2. The same marshaling code, as mini-C, is specialized by Tempo for
//     the encode context, printing the paper's Figure 5 residual code —
//     dispatch gone, overflow checks gone, function void.
//  3. Both versions run on the VM and their output buffers are compared.
package main

import (
	"fmt"
	"log"
	"net"

	"specrpc/examples/rmin/rminrpc"
	"specrpc/internal/client"
	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/server"
	"specrpc/internal/tempo"
	"specrpc/internal/vm"
)

type rminService struct{}

func (rminService) Rmin(arg *rminrpc.Pair) (*int32, error) {
	min := arg.Int1
	if arg.Int2 < min {
		min = arg.Int2
	}
	return &min, nil
}

func main() {
	if err := liveCall(); err != nil {
		log.Fatal(err)
	}
	if err := specializedPair(); err != nil {
		log.Fatal(err)
	}
}

// liveCall runs rmin over loopback UDP with the generated stubs.
func liveCall() error {
	srv := server.New()
	rminrpc.RegisterRminProgV1(srv, rminService{})
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.ServeUDP(pc) }()
	defer srv.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	c := &rminrpc.RminProgV1Client{C: client.NewUDP(conn, pc.LocalAddr(), client.Config{
		Prog: rminrpc.RminProgV1Prog, Vers: rminrpc.RminProgV1Vers,
	})}
	defer c.C.Close()

	res, err := c.Rmin(&rminrpc.Pair{Int1: 42, Int2: 17})
	if err != nil {
		return fmt.Errorf("rmin call: %w", err)
	}
	fmt.Printf("rmin(42, 17) over UDP = %d\n\n", *res)
	return nil
}

// specializedPair reproduces the paper's Figures 4 and 5: the generic
// xdr_pair stub and its residual after specialization.
func specializedPair() error {
	prog, err := rpclib.Program()
	if err != nil {
		return err
	}
	fmt.Println("=== generic xdr_pair (paper Figure 4) ===")
	var pr minic.Printer
	pr.Func(prog.Funcs["xdr_pair"])
	sub := &minic.Program{
		Funcs: map[string]*minic.FuncDef{"xdr_pair": prog.Funcs["xdr_pair"]},
		Order: []string{"func xdr_pair"},
	}
	fmt.Print(pr.Program(sub))

	res, err := tempo.Specialize(prog, &tempo.Context{
		Entry: "xdr_pair",
		Params: []tempo.ParamSpec{
			tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, 64)),
			tempo.Dynamic(),
		},
	})
	if err != nil {
		return err
	}
	fmt.Println("=== specialized xdr_pair (paper Figure 5) ===")
	var pr2 minic.Printer
	sub2 := &minic.Program{
		Funcs: map[string]*minic.FuncDef{res.Entry: res.Program.Funcs[res.Entry]},
		Order: []string{"func " + res.Entry},
	}
	fmt.Print(pr2.Program(sub2))
	if res.StaticReturn != nil {
		fmt.Printf("static return value: %d (callers fold their exit-status tests, section 3.3)\n\n", *res.StaticReturn)
	}

	// Execute both on the VM and compare the wire bytes.
	genM, err := vm.New(prog)
	if err != nil {
		return err
	}
	spcM, err := vm.New(res.Program)
	if err != nil {
		return err
	}
	genBuf, err := runPair(genM, "xdr_pair", true)
	if err != nil {
		return err
	}
	spcBuf, err := runPair(spcM, res.Entry, false)
	if err != nil {
		return err
	}
	fmt.Printf("generic wire bytes:     %x\n", genBuf)
	fmt.Printf("specialized wire bytes: %x\n", spcBuf)
	if string(genBuf) != string(spcBuf) {
		return fmt.Errorf("wire bytes differ")
	}
	fmt.Println("byte-identical: specialization preserved the wire format")
	return nil
}

func runPair(m *vm.Machine, entry string, generic bool) ([]byte, error) {
	xdrs, err := m.NewStruct("xdrbuf", "xdrs")
	if err != nil {
		return nil, err
	}
	ops, err := m.NewStruct("xdrops", "ops")
	if err != nil {
		return nil, err
	}
	opsL, err := m.Layout("xdrops")
	if err != nil {
		return nil, err
	}
	ops.Words[opsL.FieldOffset("x_putlong")] = vm.FuncVal("xdrmem_putlong")
	ops.Words[opsL.FieldOffset("x_getlong")] = vm.FuncVal("xdrmem_getlong")

	buf := vm.NewBytes("out", 8)
	layout, err := m.Layout("xdrbuf")
	if err != nil {
		return nil, err
	}
	xdrs.Words[layout.FieldOffset("x_op")] = vm.IntVal(rpclib.OpEncode)
	xdrs.Words[layout.FieldOffset("x_ops")] = vm.PtrVal(ops, 0)
	xdrs.Words[layout.FieldOffset("x_private")] = vm.PtrVal(buf, 0)
	xdrs.Words[layout.FieldOffset("x_handy")] = vm.IntVal(64)

	pair, err := m.NewStruct("pair", "arg")
	if err != nil {
		return nil, err
	}
	pair.Words[0] = vm.IntVal(42)
	pair.Words[1] = vm.IntVal(17)
	if _, err := m.Call(entry, vm.PtrVal(xdrs, 0), vm.PtrVal(pair, 0)); err != nil {
		return nil, err
	}
	return buf.Bytes, nil
}
