// Quickstart: a minimal Sun RPC service over loopback UDP using the
// library directly — compile a marshal plan for the message type,
// register a typed procedure, dial it with a typed call. The closure
// path (client.Call with hand-written marshalers) still works and is
// shown for contrast at the end.
package main

import (
	"fmt"
	"log"
	"net"

	"specrpc/internal/client"
	"specrpc/internal/server"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

const (
	progNum  = uint32(0x20000001)
	versNum  = uint32(1)
	procSort = uint32(1)
)

// intsPlan is the compiled marshal plan for the int32 array both sides
// exchange: the description compiles once, then every call encodes and
// decodes through the specialized flat plan — no per-field marshal code,
// no per-element dispatch.
var intsPlan = wire.MustPlan[[]int32](wire.VarArrayT(4096, wire.Int32T()), wire.Specialized)

func main() {
	// Server: one typed procedure that sorts an int array (insertion
	// sort, fine for a demo).
	srv := server.New()
	server.RegisterTyped(srv, progNum, versNum, procSort, intsPlan, intsPlan,
		func(xs *[]int32) (*[]int32, error) {
			s := *xs
			for i := 1; i < len(s); i++ {
				for j := i; j > 0 && s[j] < s[j-1]; j-- {
					s[j], s[j-1] = s[j-1], s[j]
				}
			}
			return xs, nil
		})

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.ServeUDP(pc) }()
	defer srv.Close()

	// Client.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	c := client.NewUDP(conn, pc.LocalAddr(), client.Config{Prog: progNum, Vers: versNum})
	defer c.Close()

	in := []int32{5, -3, 9, 0, 2}
	var out []int32
	if err := client.CallTyped(c, procSort, intsPlan, &in, intsPlan, &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sort(%v) = %v (typed call)\n", in, out)

	// The legacy closure API multiplexes freely with typed calls on the
	// same connection.
	var out2 []int32
	err = c.Call(procSort,
		func(x *xdr.XDR) error { return xdr.Array(x, &in, 4096, (*xdr.XDR).Long) },
		func(x *xdr.XDR) error { return xdr.Array(x, &out2, 4096, (*xdr.XDR).Long) },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sort(%v) = %v (closure call)\n", in, out2)
}
