// Quickstart: a minimal Sun RPC service over loopback UDP using the
// library directly — register a procedure, dial it, exchange XDR data.
package main

import (
	"errors"
	"fmt"
	"log"
	"net"

	"specrpc/internal/client"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

const (
	progNum  = uint32(0x20000001)
	versNum  = uint32(1)
	procSort = uint32(1)
)

func main() {
	// Server: one procedure that sorts an int array (insertion sort,
	// fine for a demo).
	srv := server.New()
	srv.Register(progNum, versNum, procSort, func(dec *xdr.XDR) (server.Marshal, error) {
		var xs []int32
		if err := xdr.Array(dec, &xs, 4096, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return func(enc *xdr.XDR) error {
			return xdr.Array(enc, &xs, 4096, (*xdr.XDR).Long)
		}, nil
	})

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.ServeUDP(pc) }()
	defer srv.Close()

	// Client.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	c := client.NewUDP(conn, pc.LocalAddr(), client.Config{Prog: progNum, Vers: versNum})
	defer c.Close()

	in := []int32{5, -3, 9, 0, 2}
	var out []int32
	err = c.Call(procSort,
		func(x *xdr.XDR) error { return xdr.Array(x, &in, 4096, (*xdr.XDR).Long) },
		func(x *xdr.XDR) error { return xdr.Array(x, &out, 4096, (*xdr.XDR).Long) },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sort(%v) = %v\n", in, out)
}
