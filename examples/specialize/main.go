// specialize walks the whole Tempo pipeline on a freshly defined service:
// IDL text → rpcgen mini-C stubs → binding-time division (the two-level
// view of §6.1) → residual program. It is the example to read to
// understand how a new fixed-shape RPC type gets its specialized stubs.
package main

import (
	"fmt"
	"log"

	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/rpcgen"
	"specrpc/internal/tempo"
	"specrpc/internal/tempo/bta"
)

const idl = `
/* A telemetry sample: a fixed-shape record of readings. */
struct sample {
    int station;
    int readings[6];
};

program TELEM_PROG {
    version TELEM_VERS {
        int SUBMIT(sample) = 1;
    } = 1;
} = 0x20000200;
`

func main() {
	// 1. rpcgen: IDL → mini-C marshaling stub.
	spec, err := rpcgen.Parse(idl)
	if err != nil {
		log.Fatal(err)
	}
	stub, skipped, err := rpcgen.GenerateMiniC(spec)
	if err != nil {
		log.Fatal(err)
	}
	if len(skipped) > 0 {
		log.Fatalf("not specializable: %v", skipped)
	}
	fmt.Println("=== rpcgen output (mini-C stub) ===")
	fmt.Print(stub)

	// 2. Link against the Sun RPC marshaling library.
	prog, err := minic.Parse(rpclib.Source + "\n" + stub)
	if err != nil {
		log.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		log.Fatal(err)
	}

	// 3. Declare binding times: encode mode, known buffer, dynamic data.
	ctx := &tempo.Context{
		Entry: "xdr_sample",
		Params: []tempo.ParamSpec{
			tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, 256)),
			tempo.Dynamic(),
		},
	}

	// 4. Binding-time analysis view: what is static, what is dynamic.
	div, res, err := bta.Analyze(prog, ctx)
	if err != nil {
		log.Fatal(err)
	}
	static, dynamic := div.Summary()
	fmt.Printf("=== binding-time division (%d static, %d dynamic) ===\n", static, dynamic)
	view, err := div.Render(prog, "xdr_sample")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(view)
	fmt.Println("(«…» marks dynamic code that will remain at run time)")
	fmt.Println()

	// 5. The residual program.
	fmt.Println("=== residual stub ===")
	var pr minic.Printer
	sub := &minic.Program{
		Funcs: map[string]*minic.FuncDef{res.Entry: res.Program.Funcs[res.Entry]},
		Order: []string{"func " + res.Entry},
	}
	fmt.Print(pr.Program(sub))
	if res.StaticReturn != nil {
		fmt.Printf("static return: always %d — the stub became void (section 3.3)\n", *res.StaticReturn)
	}
}
