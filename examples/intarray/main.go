// intarray is the paper's §5 benchmark workload as a runnable program:
// an int-array echo service exercised through the generic micro-layered
// pipeline and the Tempo-specialized pipeline. It prints the VM cost
// counters and real wall-clock times for both, plus the modeled times on
// the paper's two platforms.
package main

import (
	"fmt"
	"log"
	"time"

	"specrpc/internal/core"
	"specrpc/internal/platform"
)

const n = 250 // paper's mid-grid size

func main() {
	spec := core.CallSpec{Prog: 0x20000530, Vers: 1, Proc: 1, NArgs: n}
	args := make([]int32, n)
	for i := range args {
		args[i] = int32(i * 3)
	}

	for _, mode := range []core.Mode{core.Generic, core.Specialized} {
		enc, err := core.NewClientEncoder(mode, spec, 0)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServerHandler(mode, spec, func(a, r []int32) int {
			copy(r, a)
			return len(a)
		})
		if err != nil {
			log.Fatal(err)
		}
		dec, err := core.NewReplyDecoder(mode, spec)
		if err != nil {
			log.Fatal(err)
		}

		req := make([]byte, spec.RequestBytes())
		rep := make([]byte, spec.ReplyBytes())
		res := make([]int32, n)

		// One metered exchange.
		enc.ResetCost()
		srv.ResetCost()
		dec.ResetCost()
		if _, err := enc.Encode(req, 7, args); err != nil {
			log.Fatal(err)
		}
		if _, err := srv.Handle(req, rep); err != nil {
			log.Fatal(err)
		}
		if err := dec.Decode(rep, 7, res); err != nil {
			log.Fatal(err)
		}
		if res[n-1] != args[n-1] {
			log.Fatal("echo mismatch")
		}
		cost := enc.Cost()

		// Wall-clock marshaling rate on this machine.
		const iters = 200
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := enc.Encode(req, uint32(i), args); err != nil {
				log.Fatal(err)
			}
		}
		wall := time.Since(start) / iters

		fmt.Printf("%-12s  marshal: ops=%-6d calls=%-5d mem=%-6dB  wall=%v\n",
			mode, cost.Ops, cost.Calls, cost.MemBytes, wall)
		for _, m := range platform.Both() {
			ms := m.CPUTimeMS(cost, 4*n+spec.RequestBytes(), enc.CodeSize())
			fmt.Printf("%-12s  modeled %-10s marshal: %.3f ms\n", "", m.Name, ms)
		}
	}
}
