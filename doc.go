// Package specrpc is a from-scratch Go reproduction of "Fast, Optimized
// Sun RPC Using Automatic Program Specialization" (Muller, Marlet,
// Volanschi, Consel, Pu, Goel — INRIA RR-3220 / ICDCS 1998): a complete
// Sun RPC/XDR stack, a Tempo-style partial evaluator for a C-like subject
// language, the rpcgen stub compiler, and a benchmark harness that
// reproduces the paper's evaluation: Tables 1-4 and the Figure 6 panels
// are regenerated from calibrated cost models (a fit to the published
// numbers — the tests pin their qualitative shape, not the absolute
// values), and the specialization claims are re-measured on the live Go
// transport, with results tracked in BENCH_live.json and EXPERIMENTS.md.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package specrpc
