// Package specrpc is a from-scratch Go reproduction of "Fast, Optimized
// Sun RPC Using Automatic Program Specialization" (Muller, Marlet,
// Volanschi, Consel, Pu, Goel — INRIA RR-3220 / ICDCS 1998): a complete
// Sun RPC/XDR stack, a Tempo-style partial evaluator for a C-like subject
// language, the rpcgen stub compiler, and the benchmark harness that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package specrpc
